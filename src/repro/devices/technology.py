"""Synthetic deep-submicron CMOS technology.

The paper used Motorola foundry models; we substitute a self-consistent
0.18 µm-flavoured technology.  Only qualitative properties matter for the
reproduction (see DESIGN.md): a saturating square-law I–V, realistic
P/N drive-strength asymmetry, and gate/diffusion capacitances that give
fan-out-of-4 delays in the tens of picoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import FF, NM, UM, V

__all__ = ["Technology", "default_technology"]


@dataclass(frozen=True)
class Technology:
    """Process parameters shared by all devices of a design.

    Attributes
    ----------
    vdd:
        Supply voltage.
    vt_n / vt_p:
        Threshold voltage magnitudes for NMOS / PMOS.
    k_n / k_p:
        Transconductance parameters ``K' = mu * Cox`` in A/V².
    lambda_n / lambda_p:
        Channel-length modulation in 1/V.
    l_min:
        Minimum (and, in this library, only) channel length.
    c_gate_per_width:
        Gate capacitance per meter of device width.
    c_diff_per_width:
        Drain/source diffusion capacitance per meter of width.
    w_min:
        Unit (X1) NMOS width; PMOS widths are scaled by ``beta_ratio``.
    beta_ratio:
        PMOS/NMOS width ratio used by the gate library for roughly
        symmetric rise/fall.
    """

    vdd: float = 1.8 * V
    vt_n: float = 0.40 * V
    vt_p: float = 0.42 * V
    k_n: float = 170e-6
    k_p: float = 70e-6
    lambda_n: float = 0.08
    lambda_p: float = 0.10
    l_min: float = 180 * NM
    c_gate_per_width: float = 1.5 * FF / UM
    c_diff_per_width: float = 1.0 * FF / UM
    w_min: float = 0.42 * UM
    beta_ratio: float = 2.2
    #: Minimum shunt conductance added drain-source for Newton robustness.
    gmin: float = 1e-9

    def gate_cap(self, width: float) -> float:
        """Gate capacitance of a device of the given width."""
        return self.c_gate_per_width * width

    def diff_cap(self, width: float) -> float:
        """Drain/source diffusion capacitance of a device of given width."""
        return self.c_diff_per_width * width


_DEFAULT = Technology()


def default_technology() -> Technology:
    """The library-wide default synthetic technology instance."""
    return _DEFAULT
