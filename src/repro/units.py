"""SI unit helpers.

Everything inside :mod:`repro` is expressed in base SI units (seconds,
volts, amps, ohms, farads, meters).  These constants make literals in user
code and tests read like the paper: ``200 * PS``, ``50 * FF``, ``1.2 * KOHM``.
"""

# Time
S = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12
FS = 1e-15

# Capacitance
F = 1.0
UF = 1e-6
NF = 1e-9
PF = 1e-12
FF = 1e-15

# Resistance
OHM = 1.0
KOHM = 1e3
MEGOHM = 1e6

# Voltage / current
V = 1.0
MV = 1e-3
A = 1.0
MA = 1e-3
UA = 1e-6

# Length
M = 1.0
MM = 1e-3
UM = 1e-6
NM = 1e-9


def from_engineering(value: float, suffix: str) -> float:
    """Convert ``value`` with a SPICE-style engineering ``suffix`` to SI.

    >>> from_engineering(1.5, 'k')
    1500.0
    >>> from_engineering(20, 'f')
    2e-14
    """
    scales = {
        "t": 1e12, "g": 1e9, "meg": 1e6, "x": 1e6, "k": 1e3,
        "": 1.0, "m": 1e-3, "u": 1e-6, "n": 1e-9, "p": 1e-12, "f": 1e-15,
    }
    key = suffix.lower()
    if key not in scales:
        raise ValueError(f"unknown engineering suffix {suffix!r}")
    return value * scales[key]
