"""AWE-style pole/residue macromodels (moment-matched Padé).

Asymptotic Waveform Evaluation (Pillage/Rohrer) — the reduced-order
technique PRIMA superseded — approximates a transfer function by ``q``
poles matched to its first ``2q`` moments:

    H(s) ~ P(s) / Q(s),   Q(s) = 1 + b1 s + ... + bq s^q,
    H(s) ~ sum_i  k_i / (s - p_i)

Unlike PRIMA's projection, the Padé fit is explicit: the denominator
coefficients solve a small Hankel system over the moments, the poles are
its roots, and the residues come from partial fractions.  The payoff is
a *closed-form* time response: a PWL input convolves with each
exponential exactly, one recursive update per pole per time step — no
matrix solves at all.  The known downside is numerical fragility beyond
a handful of poles (the reason PRIMA exists); :func:`pade_poles` guards
by discarding unstable fits and retrying at lower order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.mna import MnaSystem
from repro.mor.prima import transfer_moments
from repro.waveform import Waveform

__all__ = ["PoleResidueModel", "pade_poles", "awe_from_mna"]

#: Relative tolerance for declaring a pole unstable (Re p > 0).
_STABILITY_SLACK = 1e-9


def pade_poles(moments: np.ndarray, order: int
               ) -> tuple[np.ndarray, np.ndarray]:
    """Moment-matched poles and residues.

    Parameters
    ----------
    moments:
        ``m_0 .. m_{2q-1}`` of ``H(s) = sum m_j s^j`` (at least ``2q``).
    order:
        Requested pole count ``q``.  If the fit yields unstable poles
        (a classic AWE failure mode) the order is reduced until a stable
        fit appears; ``q = 1`` with a stable system always succeeds.

    Returns
    -------
    ``(poles, residues)`` as complex arrays of equal length (conjugate
    pairs appear explicitly; imaginary parts cancel in responses).
    """
    moments = np.asarray(moments, dtype=float)
    if order < 1:
        raise ValueError("order must be >= 1")
    for q in range(order, 0, -1):
        if moments.size < 2 * q:
            continue
        # Solve sum_{j=1..q} b_j m_{k-j} = -m_k for k = q .. 2q-1.
        A = np.empty((q, q))
        rhs = np.empty(q)
        for row, k in enumerate(range(q, 2 * q)):
            for j in range(1, q + 1):
                A[row, j - 1] = moments[k - j]
            rhs[row] = -moments[k]
        try:
            b = np.linalg.solve(A, rhs)
        except np.linalg.LinAlgError:
            continue
        # Q(s) = 1 + b1 s + ... + bq s^q ; roots are the poles.
        q_coeffs = np.concatenate(([1.0], b))
        poles = np.roots(q_coeffs[::-1])
        if poles.size == 0 or np.any(poles.real
                                     > _STABILITY_SLACK * np.abs(poles)):
            continue
        # Numerator from the first q moments: a_k = sum b_j m_{k-j}.
        a = np.array([
            sum(q_coeffs[j] * moments[k - j] for j in range(0, k + 1)
                if j <= q)
            for k in range(q)
        ])
        # Residues k_i = P(p_i) / Q'(p_i).
        dq = np.polyder(np.poly1d(q_coeffs[::-1]))
        p_poly = np.poly1d(a[::-1]) if q > 1 else np.poly1d([a[0]])
        residues = p_poly(poles) / dq(poles)
        return poles, residues
    raise ValueError(
        "no stable Padé fit found at any order — the moment sequence "
        "may be inconsistent with a passive response")


@dataclass
class PoleResidueModel:
    """``H(s) = sum_i residues_i / (s - poles_i)`` with exact responses."""

    poles: np.ndarray
    residues: np.ndarray

    def __post_init__(self):
        self.poles = np.asarray(self.poles, dtype=complex)
        self.residues = np.asarray(self.residues, dtype=complex)
        if self.poles.shape != self.residues.shape:
            raise ValueError("poles/residues shape mismatch")
        if self.poles.size == 0:
            raise ValueError("need at least one pole")

    @property
    def order(self) -> int:
        return self.poles.size

    def dc_gain(self) -> float:
        """``H(0) = -sum k_i / p_i``."""
        return float(np.real(-np.sum(self.residues / self.poles)))

    def moments(self, count: int) -> np.ndarray:
        """``m_j = -sum k_i / p_i^(j+1)`` — for verifying the match."""
        js = np.arange(count)
        return np.real(np.array([
            -np.sum(self.residues / self.poles ** (j + 1)) for j in js
        ]))

    def dominant_time_constant(self) -> float:
        """``1 / |Re p|`` of the slowest pole."""
        return float(1.0 / np.min(np.abs(self.poles.real)))

    def response(self, u: Waveform, times: np.ndarray) -> Waveform:
        """Zero-state response to a PWL input, evaluated exactly.

        Each pole keeps one complex state updated recursively per step:
        the convolution of ``e^{p t}`` with a linear input segment has a
        closed form, so accuracy is independent of the step size (the
        grid only needs to resolve the *input's* breakpoints and the
        output detail you want to see).
        """
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.size < 2:
            raise ValueError("need a 1-D time grid with >= 2 points")
        u_vals = u(times)
        out = np.zeros(times.size)
        states = np.zeros(self.poles.size, dtype=complex)
        out[0] = 0.0
        for k in range(times.size - 1):
            h = times[k + 1] - times[k]
            u0 = u_vals[k]
            slope = (u_vals[k + 1] - u_vals[k]) / h
            E = np.exp(self.poles * h)
            seg = (u0 * (E - 1.0) / self.poles
                   + slope * (E - 1.0 - self.poles * h)
                   / (self.poles ** 2))
            states = states * E + seg
            out[k + 1] = float(np.real(np.sum(self.residues * states)))
        return Waveform(times, out)


def awe_from_mna(mna: MnaSystem, output_node: str, *, order: int = 2,
                 input_index: int = 0) -> PoleResidueModel:
    """AWE macromodel of one source-to-node transfer of an MNA system.

    ``input_index`` selects the source in the circuit's MNA input order
    (voltage sources first, then current sources).
    """
    B = mna.input_incidence()[:, [input_index]]
    L = mna.output_incidence([output_node])
    moments = transfer_moments(mna.G_array(), mna.C_array(), B, L, 2 * order)
    flat = np.array([float(m[0, 0]) for m in moments])
    poles, residues = pade_poles(flat, order)
    return PoleResidueModel(poles, residues)
