"""Transient simulation wrapper for PRIMA-reduced models."""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.circuit.mna import MnaSystem
from repro.mor.prima import prima_reduce, transfer_moments
from repro.sim.result import time_grid
from repro.waveform import Waveform

__all__ = ["ReducedModel"]


class ReducedModel:
    """A reduced-order ``Cr z' + Gr z = Br u, y = Lr^T z`` system.

    Built once per interconnect with :meth:`from_mna` and then re-simulated
    cheaply for each driver in the superposition flow — the workflow the
    paper attributes to PRIMA (its reference [2]).
    """

    def __init__(self, Gr: np.ndarray, Cr: np.ndarray, Br: np.ndarray,
                 Lr: np.ndarray, output_names: list[str]):
        self.Gr = Gr
        self.Cr = Cr
        self.Br = Br
        self.Lr = Lr
        self.output_names = list(output_names)

    @classmethod
    def from_mna(cls, mna: MnaSystem, output_nodes: list[str],
                 order: int, *, s0: float = 0.0) -> "ReducedModel":
        """Reduce a stamped MNA system, observing the given nodes.

        Inputs are the circuit's sources in MNA order (voltage sources
        first, then current sources) — the same convention as
        :meth:`~repro.circuit.MnaSystem.input_incidence`.
        """
        B = mna.input_incidence()
        L = mna.output_incidence(output_nodes)
        parts = prima_reduce(mna.G_array(), mna.C_array(), B, order, s0=s0, L=L)
        return cls(parts["Gr"], parts["Cr"], parts["Br"], parts["Lr"],
                   output_nodes)

    @property
    def order(self) -> int:
        return self.Gr.shape[0]

    def simulate(self, times: np.ndarray,
                 inputs: np.ndarray) -> dict[str, Waveform]:
        """Trapezoidal transient of the reduced system.

        Parameters
        ----------
        times:
            Uniform time grid.
        inputs:
            Input values, shape ``(p, len(times))`` in the input order of
            :meth:`from_mna`.

        Returns
        -------
        Map of output node name to its waveform.
        """
        times = np.asarray(times, dtype=float)
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        if inputs.shape != (self.Br.shape[1], times.size):
            raise ValueError(
                f"inputs must have shape ({self.Br.shape[1]}, {times.size})")
        h = times[1] - times[0]
        A = self.Cr / h + self.Gr / 2.0
        Bm = self.Cr / h - self.Gr / 2.0
        lu, piv = scipy.linalg.lu_factor(A)

        rhs = self.Br @ inputs
        try:
            z = np.linalg.solve(self.Gr, rhs[:, 0])
        except np.linalg.LinAlgError:
            z, *_ = np.linalg.lstsq(self.Gr, rhs[:, 0], rcond=None)
        outputs = np.empty((self.Lr.shape[1], times.size))
        outputs[:, 0] = self.Lr.T @ z
        for k in range(times.size - 1):
            b = Bm @ z + 0.5 * (rhs[:, k] + rhs[:, k + 1])
            z = scipy.linalg.lu_solve((lu, piv), b)
            outputs[:, k + 1] = self.Lr.T @ z
        return {
            name: Waveform(times, outputs[i])
            for i, name in enumerate(self.output_names)
        }

    def moments(self, count: int, *, s0: float = 0.0) -> list[np.ndarray]:
        """Block transfer moments of the reduced system."""
        return transfer_moments(self.Gr, self.Cr, self.Br, self.Lr, count,
                                s0=s0)
