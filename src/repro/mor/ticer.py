"""TICER: realizable RC reduction by quick-node elimination.

TICER (Sheehan, "TICER: Realizable Reduction of Extracted RC Circuits")
shrinks an extracted RC network by eliminating internal nodes whose time
constant ``tau = C_node / G_node`` is far below the timescale of
interest.  Eliminating node *n* with neighbor conductances ``g_i`` and
capacitances ``c_i`` (ground counts as a neighbor):

* conductance between former neighbors:  ``g_ij += g_i g_j / G``
* capacitance between former neighbors:  ``c_ij += (c_i g_j + c_j g_i) / G``

with ``G = sum g_i``.  DC behaviour is preserved *exactly* (the
conductance rule is Gaussian elimination); the capacitance rule keeps
the node's charge, so slow dynamics survive while sub-threshold poles
disappear.  Unlike projection methods (PRIMA/AWE) the result is again a
plain RC circuit — it can be re-parsed, re-stamped, fed to the
superposition flow, or reduced again.
"""

from __future__ import annotations

from collections import defaultdict

from repro.circuit.netlist import GROUND, Circuit

__all__ = ["ticer_reduce"]

#: Conductances/capacitances below these are dropped from the output.
_G_FLOOR = 1e-15
_C_FLOOR = 1e-21


def _pair(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def ticer_reduce(circuit: Circuit, keep: set[str] | list[str], *,
                 max_time_constant: float | None = None) -> Circuit:
    """Reduce an RC circuit by eliminating quick internal nodes.

    Parameters
    ----------
    circuit:
        Passive R/C circuit (sources and devices are rejected).
    keep:
        Port nodes that must survive (driver roots, receiver pins,
        coupling attachment points you care about).
    max_time_constant:
        Only nodes with ``tau <= max_time_constant`` are eliminated.
        ``None`` eliminates every non-kept node that has resistive
        neighbors — exact at DC, a single-pole-per-port approximation
        dynamically.

    Returns
    -------
    A new :class:`Circuit` over the kept nodes (plus any node that could
    not be eliminated, e.g. capacitor-only nodes, which have no
    conductance to redistribute).
    """
    if circuit.mosfets or circuit.vsources or circuit.isources:
        raise ValueError("ticer_reduce expects a passive R/C circuit")
    keep = set(keep)
    unknown = keep - set(circuit.nodes())
    if unknown:
        raise KeyError(f"keep nodes not in circuit: {sorted(unknown)}")

    g: dict[tuple[str, str], float] = defaultdict(float)
    c: dict[tuple[str, str], float] = defaultdict(float)
    for r in circuit.resistors:
        g[_pair(r.node1, r.node2)] += 1.0 / r.resistance
    for cap in circuit.capacitors:
        c[_pair(cap.node1, cap.node2)] += cap.capacitance

    def neighbors(node: str, table) -> dict[str, float]:
        out: dict[str, float] = defaultdict(float)
        for (a, b), value in table.items():
            if value == 0.0:
                continue
            if a == node and b != node:
                out[b] += value
            elif b == node and a != node:
                out[a] += value
        return out

    def eliminate(node: str) -> None:
        gn = neighbors(node, g)
        cn = neighbors(node, c)
        G = sum(gn.values())
        others = sorted(set(gn) | set(cn))
        for i, a in enumerate(others):
            for b in others[i + 1:]:
                if a == b:
                    continue
                key = _pair(a, b)
                g[key] += gn.get(a, 0.0) * gn.get(b, 0.0) / G
                c[key] += (cn.get(a, 0.0) * gn.get(b, 0.0)
                           + cn.get(b, 0.0) * gn.get(a, 0.0)) / G
        for other in others:
            g.pop(_pair(node, other), None)
            c.pop(_pair(node, other), None)

    def time_constant(node: str) -> float | None:
        gn = neighbors(node, g)
        G = sum(gn.values())
        if G <= 0.0:
            return None  # capacitor-only node: not eliminable
        C = sum(neighbors(node, c).values())
        return C / G

    # Iteratively eliminate the quickest eligible node; each elimination
    # changes its neighbors' time constants, so re-evaluate every pass.
    while True:
        live = {n for pair_ in list(g) + list(c) for n in pair_
                if n != GROUND}
        candidates = []
        for node in live - keep:
            tau = time_constant(node)
            if tau is None:
                continue
            if max_time_constant is None or tau <= max_time_constant:
                candidates.append((tau, node))
        if not candidates:
            break
        candidates.sort()
        eliminate(candidates[0][1])

    reduced = Circuit(f"{circuit.name}_ticer")
    for index, ((a, b), value) in enumerate(sorted(g.items())):
        if value > _G_FLOOR:
            reduced.add_resistor(f"r{index}", a, b, 1.0 / value)
    for index, ((a, b), value) in enumerate(sorted(c.items())):
        if value > _C_FLOOR:
            reduced.add_capacitor(f"c{index}", a, b, value)
    return reduced
