"""Model order reduction (PRIMA).

The paper's flow (Figure 1) relies on building a reduced-order model of
the passive interconnect once — with PRIMA [Odabasioglu, Celik, Pileggi,
ICCAD'97, the paper's reference 2] — and reusing it for every driver
simulation in the superposition loop.

* :mod:`repro.mor.prima` — the block-Arnoldi PRIMA projection;
  :mod:`repro.mor.reduced` wraps the reduced system for transient
  simulation and moment checks.
* :mod:`repro.mor.awe` — AWE-style moment-matched Padé poles with exact
  closed-form PWL responses (the technique PRIMA superseded; still the
  fastest way to an analytic estimate).
* :mod:`repro.mor.ticer` — TICER quick-node elimination: reduction that
  stays a realizable RC circuit.
"""

from repro.mor.prima import prima_reduce, transfer_moments
from repro.mor.reduced import ReducedModel
from repro.mor.awe import PoleResidueModel, awe_from_mna, pade_poles
from repro.mor.ticer import ticer_reduce

__all__ = ["prima_reduce", "transfer_moments", "ReducedModel",
           "PoleResidueModel", "awe_from_mna", "pade_poles",
           "ticer_reduce"]
