"""PRIMA: passive reduced-order interconnect macromodeling.

Given the MNA descriptor system

    C x'(t) + G x(t) = B u(t),      y(t) = L^T x(t)

PRIMA projects onto an orthonormal basis ``V`` of the block Krylov space

    K_q(A, R) = span{R, A R, A^2 R, ...},  A = -(G)^{-1} C,  R = G^{-1} B

(expansion about ``s0 = 0``; an arbitrary real expansion point is supported
by shifting ``G -> G + s0 C``).  The congruence-transformed system

    (V^T C V) z' + (V^T G V) z = (V^T B) u,   y = (V^T L)^T z

matches at least ``floor(q / p)`` block moments of the original transfer
function (``p`` inputs) and — when ``G`` and ``C`` are symmetric positive
semidefinite, as they are for RC circuits with current-source inputs —
preserves passivity, because congruence preserves definiteness.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

__all__ = ["prima_reduce", "transfer_moments"]

#: Vectors whose post-orthogonalization norm falls below this fraction of
#: their pre-orthogonalization norm are deflated (considered dependent).
_DEFLATION_TOL = 1e-10


def prima_reduce(G: np.ndarray, C: np.ndarray, B: np.ndarray,
                 order: int, *, s0: float = 0.0,
                 L: np.ndarray | None = None):
    """Compute the PRIMA projection basis and reduced matrices.

    Parameters
    ----------
    G, C:
        MNA conductance / capacitance matrices, shape ``(n, n)``.
    B:
        Input incidence, shape ``(n, p)``.
    order:
        Target reduced dimension ``q`` (the basis may come out smaller if
        the Krylov space deflates).
    s0:
        Real expansion frequency; 0 is the usual choice for RC.
    L:
        Optional output incidence ``(n, m)``; reduced as ``V^T L``.

    Returns
    -------
    dict with keys ``V, Gr, Cr, Br`` and (if ``L`` given) ``Lr``.
    """
    G = np.asarray(G, dtype=float)
    C = np.asarray(C, dtype=float)
    B = np.atleast_2d(np.asarray(B, dtype=float))
    if B.shape[0] != G.shape[0]:
        raise ValueError("B row count must match G dimension")
    if order < 1:
        raise ValueError("order must be >= 1")

    n, p = B.shape
    order = min(order, n)

    shifted = G + s0 * C if s0 != 0.0 else G
    lu, piv = scipy.linalg.lu_factor(shifted)

    def solve(M: np.ndarray) -> np.ndarray:
        out = scipy.linalg.lu_solve((lu, piv), M, check_finite=False)
        if not np.isfinite(out).all():
            raise ValueError(
                "(G + s0*C) is singular at the expansion point — a net "
                "floats at DC (reachable only through capacitors). Anchor "
                "it with a holding resistor or pass s0 > 0.")
        return out

    # Block Arnoldi with modified Gram-Schmidt and deflation.
    columns: list[np.ndarray] = []

    def orthonormalize(block: np.ndarray) -> np.ndarray:
        kept = []
        for j in range(block.shape[1]):
            v = block[:, j].copy()
            norm_before = np.linalg.norm(v)
            if norm_before == 0.0:
                continue
            for _ in range(2):  # twice for numerical orthogonality
                for u in columns:
                    v -= (u @ v) * u
            # Relative criterion: Krylov blocks of RC systems shrink by a
            # factor ~RC (1e-10 s) per iteration, so only the fraction of
            # the vector that is new information matters, not its scale.
            norm_after = np.linalg.norm(v)
            if norm_after <= _DEFLATION_TOL * norm_before:
                continue
            v /= norm_after
            columns.append(v)
            kept.append(v)
            if len(columns) >= order:
                break
        return np.column_stack(kept) if kept else np.empty((n, 0))

    block = orthonormalize(solve(B))
    while len(columns) < order and block.shape[1] > 0:
        block = orthonormalize(solve(C @ block))

    if not columns:
        raise ValueError("Krylov space is empty (zero input incidence?)")
    V = np.column_stack(columns)

    result = {
        "V": V,
        "Gr": V.T @ G @ V,
        "Cr": V.T @ C @ V,
        "Br": V.T @ B,
    }
    if L is not None:
        result["Lr"] = V.T @ np.atleast_2d(np.asarray(L, dtype=float))
    return result


def transfer_moments(G: np.ndarray, C: np.ndarray, B: np.ndarray,
                     L: np.ndarray, count: int,
                     *, s0: float = 0.0) -> list[np.ndarray]:
    """Block moments ``m_k`` of ``H(s) = L^T (G + s C)^{-1} B`` about s0.

    ``H(s0 + s) = sum_k m_k s^k`` with
    ``m_k = (-1)^k L^T ((G + s0 C)^{-1} C)^k (G + s0 C)^{-1} B``.
    Used by tests to verify PRIMA's moment matching and by the effective
    capacitance code to extract driving-point admittance moments.
    """
    G = np.asarray(G, dtype=float)
    C = np.asarray(C, dtype=float)
    B = np.atleast_2d(np.asarray(B, dtype=float))
    L = np.atleast_2d(np.asarray(L, dtype=float))
    shifted = G + s0 * C if s0 != 0.0 else G
    lu, piv = scipy.linalg.lu_factor(shifted)
    moments = []
    X = scipy.linalg.lu_solve((lu, piv), B)
    sign = 1.0
    for _ in range(count):
        moments.append(sign * (L.T @ X))
        X = scipy.linalg.lu_solve((lu, piv), C @ X)
        sign = -sign
    return moments
