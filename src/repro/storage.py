"""Characterization persistence.

A production noise tool characterizes its cell library once — Thevenin
tables per (cell, slew, direction) and alignment tables per receiver
cell — and ships the result as a sidecar database.  This module
serializes the library's characterization state to JSON so an analyzer
can be rehydrated without re-running a single non-linear simulation:

    analyzer = DelayNoiseAnalyzer()
    ... analyze some nets (tables build on demand) ...
    save_characterization("chardb.json", analyzer)

    fresh = DelayNoiseAnalyzer()
    load_characterization("chardb.json", fresh)   # instant reuse

Only plain floats/lists go into the file; gates are referenced by cell
name and rebuilt from :func:`repro.gates.standard_cell` on load.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.core.analysis import DelayNoiseAnalyzer, NoiseReport
from repro.core.holding_resistance import RtrResult
from repro.core.precharacterize import AlignmentTable
from repro.gates.library import standard_cell
from repro.gates.thevenin import TheveninModel, TheveninTable
from repro.resilience.degradation import Degradation
from repro.waveform import Waveform

__all__ = [
    "thevenin_model_to_dict", "thevenin_model_from_dict",
    "thevenin_table_to_dict", "thevenin_table_from_dict",
    "alignment_table_to_dict", "alignment_table_from_dict",
    "waveform_to_dict", "waveform_from_dict",
    "rtr_result_to_dict", "rtr_result_from_dict",
    "noise_report_to_dict", "noise_report_from_dict",
    "characterization_payload", "install_characterization",
    "save_characterization", "load_characterization",
]

#: Schema version written into every file; bumped on layout changes.
FORMAT_VERSION = 1


def thevenin_model_to_dict(model: TheveninModel) -> dict[str, float]:
    return {"t0": model.t0, "dt": model.dt, "rth": model.rth,
            "v_start": model.v_start, "v_end": model.v_end}


def thevenin_model_from_dict(data: dict[str, float]) -> TheveninModel:
    return TheveninModel(t0=float(data["t0"]), dt=float(data["dt"]),
                         rth=float(data["rth"]),
                         v_start=float(data["v_start"]),
                         v_end=float(data["v_end"]))


def thevenin_table_to_dict(table: TheveninTable) -> dict[str, Any]:
    return {
        "gate": table.gate.name,
        "input_slew": table.input_slew,
        "output_rising": table.output_rising,
        "loads": [float(c) for c in table.loads],
        "models": [thevenin_model_to_dict(m) for m in table.models],
    }


def thevenin_table_from_dict(data: dict[str, Any]) -> TheveninTable:
    return TheveninTable(
        gate=standard_cell(data["gate"]),
        input_slew=float(data["input_slew"]),
        output_rising=bool(data["output_rising"]),
        loads=np.asarray(data["loads"], dtype=float),
        models=[thevenin_model_from_dict(m) for m in data["models"]],
    )


def alignment_table_to_dict(table: AlignmentTable) -> dict[str, Any]:
    return {
        "gate_name": table.gate_name,
        "vdd": table.vdd,
        "victim_rising": table.victim_rising,
        "c_load": table.c_load,
        "slews": list(table.slews),
        "widths": list(table.widths),
        "heights": list(table.heights),
        "va": table.va.tolist(),
        "cliff_guard": table.cliff_guard,
    }


def alignment_table_from_dict(data: dict[str, Any]) -> AlignmentTable:
    return AlignmentTable(
        gate_name=data["gate_name"],
        vdd=float(data["vdd"]),
        victim_rising=bool(data["victim_rising"]),
        c_load=float(data["c_load"]),
        slews=tuple(float(x) for x in data["slews"]),
        widths=tuple(float(x) for x in data["widths"]),
        heights=tuple(float(x) for x in data["heights"]),
        va=np.asarray(data["va"], dtype=float),
        cliff_guard=float(data.get("cliff_guard", 0.08)),
    )


def waveform_to_dict(wave: Waveform) -> dict[str, list[float]]:
    """Sample-exact dict form (JSON floats round-trip bit-identically)."""
    return {"times": wave.times.tolist(), "values": wave.values.tolist()}


def waveform_from_dict(data: dict[str, Any]) -> Waveform:
    return Waveform(data["times"], data["values"])


def rtr_result_to_dict(result: RtrResult) -> dict[str, Any]:
    return {
        "rtr": result.rtr,
        "rth": result.rth,
        "iterations": result.iterations,
        "converged": result.converged,
        "driver_load": result.driver_load,
        "noise_current": waveform_to_dict(result.noise_current),
        "noise_linear": waveform_to_dict(result.noise_linear),
        "noise_nonlinear": waveform_to_dict(result.noise_nonlinear),
    }


def rtr_result_from_dict(data: dict[str, Any]) -> RtrResult:
    return RtrResult(
        rtr=float(data["rtr"]),
        rth=float(data["rth"]),
        iterations=int(data["iterations"]),
        converged=bool(data["converged"]),
        driver_load=data["driver_load"],
        noise_current=waveform_from_dict(data["noise_current"]),
        noise_linear=waveform_from_dict(data["noise_linear"]),
        noise_nonlinear=waveform_from_dict(data["noise_nonlinear"]),
    )


#: NoiseReport fields that serialize as plain JSON scalars/dicts.
_REPORT_PLAIN_FIELDS = (
    "net_name", "vdd", "victim_rising", "alignment_method",
    "ceff_victim", "rth_victim", "rtr", "victim_slew", "pulse_height",
    "pulse_width", "peak_time", "aggressor_shifts", "iterations",
    "extra_delay_input", "extra_delay_output",
    "extra_delay_input_thevenin", "extra_delay_output_thevenin",
    "quality",
)
#: NoiseReport fields holding waveforms.
_REPORT_WAVE_FIELDS = (
    "noiseless_input", "composite", "noisy_input", "noiseless_output",
    "noisy_output", "composite_thevenin",
)


def noise_report_to_dict(report: NoiseReport) -> dict[str, Any]:
    """A :class:`NoiseReport` as a JSON-serializable payload.

    Floats survive JSON exactly (``repr`` round-trip), so a report
    reloaded from a checkpoint is bit-identical to the original — the
    property the resume path relies on.
    """
    payload: dict[str, Any] = {
        name: getattr(report, name) for name in _REPORT_PLAIN_FIELDS
    }
    for name in _REPORT_WAVE_FIELDS:
        payload[name] = waveform_to_dict(getattr(report, name))
    payload["rtr_result"] = (
        rtr_result_to_dict(report.rtr_result)
        if report.rtr_result is not None else None)
    payload["degradations"] = [
        {"stage": d.stage, "error": d.error, "fallback": d.fallback}
        for d in report.degradations
    ]
    return payload


def noise_report_from_dict(data: dict[str, Any]) -> NoiseReport:
    kwargs: dict[str, Any] = {
        name: data[name] for name in _REPORT_PLAIN_FIELDS
    }
    for name in _REPORT_WAVE_FIELDS:
        kwargs[name] = waveform_from_dict(data[name])
    kwargs["rtr_result"] = (
        rtr_result_from_dict(data["rtr_result"])
        if data.get("rtr_result") is not None else None)
    kwargs["degradations"] = [
        Degradation(stage=d["stage"], error=d["error"],
                    fallback=d["fallback"])
        for d in data.get("degradations", [])
    ]
    return NoiseReport(**kwargs)


def characterization_payload(analyzer: DelayNoiseAnalyzer
                             ) -> dict[str, Any]:
    """The analyzer's characterization caches as a plain-dict payload.

    The payload is JSON-serializable and is the exchange format both for
    the on-disk chardb (:func:`save_characterization`) and for the
    worker warm-start snapshots of :mod:`repro.exec`.
    """
    thevenin = [
        {"key": {"gate": key[0], "input_slew": key[1],
                 "output_rising": key[2]},
         "table": thevenin_table_to_dict(table)}
        for key, table in analyzer.cache.entries()
    ]
    alignment = [alignment_table_to_dict(t)
                 for t in analyzer.alignment_tables()]
    return {
        "format_version": FORMAT_VERSION,
        "thevenin_tables": thevenin,
        "alignment_tables": alignment,
    }


def install_characterization(payload: dict[str, Any],
                             analyzer: DelayNoiseAnalyzer) -> None:
    """Populate an analyzer's caches from a payload dict.

    Existing entries with the same keys are overwritten; others are
    preserved, so several payloads can be layered.
    """
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported characterization format {version!r} "
            f"(expected {FORMAT_VERSION})")
    for entry in payload["thevenin_tables"]:
        key = (entry["key"]["gate"], float(entry["key"]["input_slew"]),
               bool(entry["key"]["output_rising"]))
        analyzer.cache.install(key, thevenin_table_from_dict(
            entry["table"]))
    for data in payload["alignment_tables"]:
        analyzer.register_table(alignment_table_from_dict(data))


def save_characterization(path, analyzer: DelayNoiseAnalyzer) -> None:
    """Write the analyzer's characterization caches to ``path``.

    The write is atomic (temp file in the target directory, then
    ``os.replace``): a crash mid-save leaves any existing database
    intact instead of truncated.
    """
    from repro.obs.ioutil import atomic_write_json

    atomic_write_json(path, characterization_payload(analyzer), indent=1)


def load_characterization(path, analyzer: DelayNoiseAnalyzer) -> None:
    """Populate an analyzer's caches from a saved database.

    Existing entries with the same keys are overwritten; others are
    preserved, so several databases can be layered.
    """
    with open(path) as handle:
        payload = json.load(handle)
    install_characterization(payload, analyzer)
