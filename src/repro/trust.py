"""Numerical trust layer: verify accepted solves, escalate on doubt.

The alignment search is only as trustworthy as the thousands of Newton
and linear solves underneath it.  The fast kernels (Woodbury scalar,
batched active-set, sparse SuperLU) all have failure modes that do not
surface as nonconvergence: a silently ill-conditioned factorization or
a stale modified-Newton Jacobian can converge to a *wrong* state and
the report still says ``quality="exact"``.

This module provides the shared machinery; the solver stack wires it
in:

* **Residual audits** — accepted solves are post-verified with the
  cheap relative residual ``||Ax - b|| / (||A||*||x|| + ||b||)``
  against a per-dim tolerance (:func:`residual_tolerance`).  The full
  check (finiteness tripwire plus residual) is sampled every
  ``check_interval`` accepted solves to keep the clean-path overhead
  small; installing a fault plan bypasses the stride so injected
  corruption always faces the audit.
* **Condition monitoring** — each new
  :class:`~repro.sim.factor.Factorization` reports a reciprocal
  condition estimate through :func:`observe_factorization`; estimates
  below ``rcond_min`` raise the ``trust.condition_warnings`` counter
  and a log warning.
* **Escalation ladder** — on a residual violation the solver walks
  fresh-factor exact Newton -> legacy dense kernel -> dense-from-sparse
  rebuild (implemented in ``repro.sim.nonlinear``), recording each hop
  through :func:`record_event` so the analyzer can attach a
  ``Degradation(stage="trust")`` provenance entry to the report
  instead of silently returning the suspect state.
* **Differential audits** — :func:`run_audit` re-runs a seeded random
  sample of screened nets through the legacy oracle kernel and
  compares the headline numbers (``screen --audit-rate P``).

Tolerances are deliberately conservative (orders of magnitude above
any legitimate accepted state, orders below a corrupted one): a clean
run must be *bit-identical* with the layer on or off, which the
property tests assert.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from dataclasses import dataclass, replace

import numpy as np

from repro.obs import get_logger, metrics

__all__ = [
    "TrustConfig", "TrustViolation", "config", "configure",
    "trust_enabled", "trust_mode", "matrix_norm1", "relative_residual",
    "residual_tolerance", "observe_factorization", "record_event",
    "drain_events", "run_audit", "AUDIT_FIELDS", "AUDIT_TOLERANCE",
]

log = get_logger("trust")

_CHECKS = metrics().counter("trust.residual_checks")
_VIOLATIONS = metrics().counter("trust.violations")
_CONDITION = metrics().counter("trust.condition_warnings")
_FACTORIZATIONS = metrics().counter("trust.factorizations")
_UNRECOVERED = metrics().counter("trust.unrecovered")


@dataclass(frozen=True)
class TrustConfig:
    """Knobs for the verification layer.

    ``linear_rtol`` gates direct linear solves (backward-stable, so the
    legitimate residual is ~n*eps); ``newton_rtol`` gates accepted
    Newton states, whose acceptance test is a step-norm tolerance — the
    nonlinear residual of a legitimately converged state is bounded by
    ``||J|| * vtol``, so the gate sits ~100x above that and ~100x below
    a grossly corrupted state.  Both scale with
    :func:`residual_tolerance`.
    """

    enabled: bool = True
    #: Base relative-residual budget for direct linear solves.
    linear_rtol: float = 1e-9
    #: Base relative-residual budget for accepted Newton states.
    newton_rtol: float = 3e-4
    #: Reciprocal-condition estimates below this raise a warning.
    rcond_min: float = 1e-12
    #: Full residual check every Nth accepted solve (1 = every solve).
    #: A full check costs about one Newton iteration (device evaluation
    #: plus a mat-vec), so the stride is what keeps the clean path
    #: inside the 5% perf-smoke budget; the per-solve finiteness guard
    #: still trips immediately on NaN/inf corruption.
    check_interval: int = 32
    #: Voltage scale folded into the residual denominator so near-zero
    #: states do not produce 0/0 false positives.
    voltage_floor: float = 1.0


_CONFIG = TrustConfig()

#: Per-process ledger of trust events (violations, escalation hops).
#: Drained by ``DelayNoiseAnalyzer.analyze`` into ``Degradation``
#: provenance entries on the report being built.
_EVENTS: list[dict] = []


def config() -> TrustConfig:
    return _CONFIG


def configure(**changes) -> TrustConfig:
    """Replace fields of the process-wide :class:`TrustConfig`."""
    global _CONFIG
    _CONFIG = replace(_CONFIG, **changes)
    return _CONFIG


def trust_enabled() -> bool:
    return _CONFIG.enabled


@contextmanager
def trust_mode(enabled: bool):
    """Temporarily enable/disable verification (bench, tests)."""
    previous = _CONFIG.enabled
    configure(enabled=enabled)
    try:
        yield
    finally:
        configure(enabled=previous)


def matrix_norm1(matrix) -> float:
    """1-norm of a dense array or scipy sparse matrix."""
    if hasattr(matrix, "toarray") and not isinstance(matrix, np.ndarray):
        return float(abs(matrix).sum(axis=0).max())
    matrix = np.asarray(matrix)
    if matrix.size == 0:
        return 0.0
    return float(np.abs(matrix).sum(axis=0).max())


def residual_tolerance(dim: int, base: float) -> float:
    """Per-dim tolerance: the base budget grows with sqrt(dim)."""
    return base * max(1.0, math.sqrt(float(dim)))


def relative_residual(residual, anorm: float, x, b, *,
                      floor: float | None = None) -> float:
    """``||r|| / (||A||*||x|| + ||b||)`` with a scale floor.

    ``floor`` (defaults to ``config().voltage_floor``) enters as
    ``anorm * floor`` in the denominator: early-transient states are
    near zero and the bare ratio would be 0/0.  Non-finite residuals
    report ``inf`` so they always violate.
    """
    residual = np.asarray(residual, dtype=float)
    if residual.size and not np.isfinite(residual).all():
        return math.inf
    if floor is None:
        floor = _CONFIG.voltage_floor
    rnorm = float(np.abs(residual).max()) if residual.size else 0.0
    xnorm = float(np.abs(np.asarray(x)).max()) if np.size(x) else 0.0
    bnorm = float(np.abs(np.asarray(b)).max()) if np.size(b) else 0.0
    if not math.isfinite(xnorm) or not math.isfinite(bnorm):
        return math.inf
    denominator = anorm * (xnorm + floor) + bnorm
    if denominator <= 0.0:
        return math.inf if rnorm > 0.0 else 0.0
    return rnorm / denominator


def observe_factorization(fact, context: str = "") -> float | None:
    """Condition-monitor one new factorization (no-op when disabled).

    Returns the reciprocal condition estimate, or ``None`` when the
    layer is off or the backend cannot produce one.  Estimates below
    ``rcond_min`` raise ``trust.condition_warnings`` and log — they do
    not escalate on their own (an ill-conditioned but correct solve
    passes the residual audit; a wrong one does not).
    """
    if not _CONFIG.enabled:
        return None
    _FACTORIZATIONS.inc()
    rcond = fact.rcond_estimate()
    if rcond is not None and rcond < _CONFIG.rcond_min:
        _CONDITION.inc()
        log.warning("ill-conditioned factorization (rcond ~ %.3e)%s",
                    rcond, f" in {context}" if context else "")
    return rcond


def record_event(kind: str, *, context: str = "", detail: str = "",
                 hop: str = "") -> dict:
    """Append one trust event to the per-process ledger.

    ``kind`` is ``"violation"`` (a residual audit failed),
    ``"escalated"`` (a ladder hop produced a verified state; ``hop``
    names it) or ``"unrecovered"`` (the whole ladder failed).
    """
    event = {"kind": kind, "context": context, "detail": detail,
             "hop": hop}
    _EVENTS.append(event)
    if kind == "violation":
        _VIOLATIONS.inc()
    elif kind == "escalated":
        metrics().counter(f"trust.escalations.{hop}").inc()
    elif kind == "unrecovered":
        _UNRECOVERED.inc()
    log.warning("trust %s%s%s%s", kind,
                f" via {hop}" if hop else "",
                f" in {context}" if context else "",
                f": {detail}" if detail else "")
    return event


def count_check() -> None:
    """Raise the sampled residual-check counter (solver-side hook)."""
    _CHECKS.inc()


def drain_events() -> list[dict]:
    """Return and clear the per-process trust-event ledger."""
    events = list(_EVENTS)
    _EVENTS.clear()
    return events


# -- differential audit ------------------------------------------------

#: Report scalars compared against the legacy oracle.
AUDIT_FIELDS = ("extra_delay_output", "extra_delay_input",
                "pulse_height", "peak_time")

#: Absolute agreement tolerance per audited field (volts / seconds) —
#: matches the bench equivalence gate.
AUDIT_TOLERANCE = 1e-9


def run_audit(nets, reports, analyzer, *, rate: float, seed: int = 0,
              analyze_kwargs: dict | None = None,
              tolerance: float = AUDIT_TOLERANCE) -> dict:
    """Re-run a seeded random sample of nets through the legacy oracle.

    ``reports`` maps net name -> ``NoiseReport`` (nets that failed or
    produced degraded reports are skipped: a degraded fast-path result
    legitimately diverges from a clean oracle run).  Returns the
    ``audit`` block merged into the run manifest::

        {"rate": ..., "seed": ..., "eligible": N, "sampled": [...],
         "checked": n, "mismatches": [{"net": ..., "field": ...,
         "screened": ..., "oracle": ..., "delta": ...}, ...],
         "tolerance": ..., "ok": bool}
    """
    from repro.sim.nonlinear import kernel_mode

    analyze_kwargs = dict(analyze_kwargs or {})
    eligible = [net for net in nets
                if reports.get(net.name) is not None
                and reports[net.name].quality == "exact"]
    rng = random.Random(seed)
    sampled = [net for net in eligible if rng.random() < rate]
    mismatches: list[dict] = []
    checked = 0
    for net in sampled:
        with kernel_mode("legacy"):
            oracle = analyzer.analyze(net, **analyze_kwargs)
        if oracle.quality != "exact":
            log.warning("audit: oracle run for %s degraded (%s); "
                        "skipping comparison", net.name,
                        [d.stage for d in oracle.degradations])
            continue
        checked += 1
        screened = reports[net.name]
        for field in AUDIT_FIELDS:
            lhs = float(getattr(screened, field))
            rhs = float(getattr(oracle, field))
            delta = abs(lhs - rhs)
            if not math.isfinite(delta) or delta > tolerance:
                mismatches.append({
                    "net": net.name, "field": field, "screened": lhs,
                    "oracle": rhs, "delta": delta})
    metrics().counter("trust.audit.checked").inc(checked)
    metrics().counter("trust.audit.mismatches").inc(len(mismatches))
    for miss in mismatches:
        log.error("audit mismatch on %s.%s: screened %.6e vs oracle "
                  "%.6e (|delta| %.3e > %.0e)", miss["net"],
                  miss["field"], miss["screened"], miss["oracle"],
                  miss["delta"], tolerance)
    return {"rate": rate, "seed": seed, "eligible": len(eligible),
            "sampled": [net.name for net in sampled],
            "checked": checked, "mismatches": mismatches,
            "tolerance": tolerance, "ok": not mismatches}


def __getattr__(name: str):
    # TrustViolation subclasses ConvergenceError so the existing
    # dt-bisection / DC-recovery ladders still catch it; the class
    # lives in repro.sim.nonlinear (which imports this module) and is
    # re-exported here lazily to avoid the import cycle.
    if name == "TrustViolation":
        from repro.sim.nonlinear import TrustViolation
        return TrustViolation
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
