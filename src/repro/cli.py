"""Command-line interface.

Entry points mirroring the production workflow:

* ``repro characterize`` — build Thevenin and alignment tables for a set
  of cells and save them as a characterization database (JSON).
* ``repro analyze`` — run the delay-noise flow on a coupled net whose
  parasitics come from a SPICE-style netlist file.
* ``repro screen`` — sweep a seeded synthetic population and print the
  functional/delay-noise screening table; ``--trace``/``--metrics``
  export the run's telemetry, ``--checkpoint``/``--resume`` make long
  screens crash-safe (``--force-resume`` overrides the stale-config
  guard), ``--retries``/``--max-failures`` tune the worker-crash and
  circuit-breaker policies, ``--init-timeout``/``--watchdog-factor``/
  ``--rss-budget-mb`` configure the worker watchdog, and
  ``--audit-rate P`` re-runs a seeded sample of nets through the
  legacy oracle and fails on any mismatch.  ``--noise-threshold V``
  switches on the three-tier screen (closed-form bound, reduced-order
  estimate, full analysis — see ``repro.core.screening``): nets whose
  conservative bound stays below V are pruned without touching the
  nonlinear kernels, and ``--prune-audit-rate P`` re-checks a seeded
  sample of the prunes at tier 2, failing the run on any unsound one.
* ``repro bench --perf`` — time the Newton kernels (fast vs. legacy
  reference) on a seeded population, write ``BENCH_perf.json`` and fail
  on solver-equivalence drift; ``--history``/``--baseline`` append to
  the bench-history ledger and fail on >threshold regressions vs the
  rolling baseline.
* ``repro trace summarize`` — per-stage time breakdown of a trace file.
* ``repro trace export --chrome`` — convert a trace to Chrome
  trace-event JSON for ``ui.perfetto.dev``.
* ``repro report`` — render a run manifest (``--manifest``) back into a
  human-readable summary.

``screen``/``bench`` accept ``--manifest FILE`` to write a
schema-versioned run manifest (config, git revision, host, per-stage
timings, resources, full metrics snapshot); ``screen --progress``
renders a live per-net progress line with throughput, ETA and
straggler flags.

All output goes through the ``repro`` logger hierarchy: ``-v`` adds
per-stage diagnostics, ``-q`` keeps only warnings.  Run ``python -m
repro <command> --help`` for the options of each.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import nullcontext

from repro.circuit.parser import parse_netlist, parse_value
from repro.core.analysis import DelayNoiseAnalyzer
from repro.core.functional import functional_noise
from repro.core.net import (
    AggressorSpec,
    CoupledNet,
    DriverSpec,
    ReceiverSpec,
)
from repro.core.precharacterize import build_alignment_table
from repro.core.superposition import SuperpositionEngine
from repro.gates.library import standard_cell
from repro.obs import (
    ProgressTracker,
    RunManifest,
    Tracer,
    atomic_write_json,
    configure_cli_logging,
    current_tracer,
    format_manifest,
    format_summary,
    get_logger,
    load_manifest,
    metrics,
    read_trace,
    set_tracer,
    write_chrome_trace,
)
from repro.obs.progress import progress_stream
from repro.units import PS
from repro.waveform.render import render_waveforms

__all__ = ["main", "build_parser"]

#: CLI output channel: INFO records are the program's stdout output,
#: DEBUG records appear with ``-v``, WARNING+ always.
out = get_logger("cli")


def _value(text: str) -> float:
    """SPICE-style engineering value (``200p``, ``10f``, ``1.2k``)."""
    try:
        return parse_value(text)
    except Exception as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Crosstalk delay-noise analysis (DAC 2001 "
                    "reproduction)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="per-stage diagnostics (repeatable)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="only warnings and errors (repeatable)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_char = sub.add_parser(
        "characterize",
        help="build Thevenin + alignment tables and save a database")
    p_char.add_argument("--cells", required=True,
                        help="comma-separated cell names, e.g. "
                             "INV_X1,INV_X2")
    p_char.add_argument("--slews", default="100p,200p,400p",
                        help="comma-separated input slews for Thevenin "
                             "tables")
    p_char.add_argument("--out", required=True,
                        help="output database path (JSON)")
    p_char.add_argument("--skip-alignment", action="store_true",
                        help="only build Thevenin tables")

    p_an = sub.add_parser(
        "analyze", help="analyze one coupled net from a netlist file")
    p_an.add_argument("netlist", help="SPICE-subset parasitic deck")
    p_an.add_argument("--victim-root", required=True)
    p_an.add_argument("--victim-receiver", required=True)
    p_an.add_argument("--victim-cell", default="INV_X1")
    p_an.add_argument("--victim-slew", type=_value, default=200e-12)
    p_an.add_argument("--victim-falling", action="store_true",
                      help="analyze a falling victim transition")
    p_an.add_argument("--receiver-cell", default="INV_X2")
    p_an.add_argument("--receiver-load", type=_value, default=10e-15)
    p_an.add_argument(
        "--aggressor", action="append", required=True, metavar="SPEC",
        help="name:root:far_end[:cell[:slew]] — repeat per aggressor")
    p_an.add_argument("--alignment", default="table",
                      choices=("table", "input-objective", "exhaustive"))
    p_an.add_argument("--no-rtr", action="store_true",
                      help="use the traditional Thevenin holding only")
    p_an.add_argument("--chardb",
                      help="characterization database to preload")
    p_an.add_argument("--save-chardb",
                      help="save the (possibly extended) database here")
    p_an.add_argument("--plot", action="store_true",
                      help="render the receiver-input waveforms")
    p_an.add_argument("--functional", action="store_true",
                      help="also run the static-victim functional check")

    p_scr = sub.add_parser(
        "screen", help="screen a synthetic population")
    p_scr.add_argument("--seed", type=int, default=1)
    p_scr.add_argument("--count", type=int, default=4)
    p_scr.add_argument("--preset",
                       choices=("default", "hp", "screening"),
                       default="default",
                       help="population flavour; 'screening' generates "
                            "the realistic mostly-quiet distribution "
                            "(log-uniform coupling) the tiered screen "
                            "is designed for")
    p_scr.add_argument("--noise-threshold", type=_value, default=None,
                       metavar="V",
                       help="enable tiered screening: nets whose "
                            "conservative closed-form bound (tier 0) "
                            "or reduced-order estimate (tier 1) stays "
                            "below this composite pulse height (volts, "
                            "e.g. 0.6) are pruned; only escalated nets "
                            "get the full Rtr/alignment analysis")
    p_scr.add_argument("--tier-policy",
                       choices=("auto", "bound-only", "full"),
                       default="auto",
                       help="tier progression under --noise-threshold: "
                            "auto = bound, then MOR estimate, then "
                            "full; bound-only skips the MOR tier; full "
                            "escalates every net (the exhaustive "
                            "baseline)")
    p_scr.add_argument("--guard-band", type=float, default=None,
                       metavar="G",
                       help="tier-1 safety multiplier on the "
                            "reduced-order estimate (default 1.25)")
    p_scr.add_argument("--prune-audit-rate", type=float, default=0.0,
                       metavar="P",
                       help="re-run a seeded fraction P of the pruned "
                            "nets through the full tier-2 analysis; a "
                            "pruned net measuring at/above the "
                            "threshold is an unsound prune and fails "
                            "the run (1.0 re-checks every prune)")
    p_scr.add_argument("--hold", action="store_true",
                       help="also report worst-case hold speed-up")
    p_scr.add_argument("--jobs", type=_positive_int, default=1,
                       help="worker processes for the per-net analysis "
                            "(workers warm-start from the parent's "
                            "characterization tables)")
    p_scr.add_argument("--timeout", type=float, default=None,
                       help="per-net wall-clock limit in seconds; an "
                            "overrunning net is reported as failed "
                            "instead of stalling the screen")
    p_scr.add_argument("--init-timeout", type=float, default=None,
                       metavar="S",
                       help="deadline on each worker's warm-start "
                            "restore; an overrunning initializer turns "
                            "its nets into WorkerInitTimeout failures "
                            "(default: 10x --timeout when set)")
    p_scr.add_argument("--watchdog-factor", type=float, default=None,
                       metavar="F",
                       help="hang deadline as a multiple of the "
                            "completed-net p95 wall time (default 4.0; "
                            "0 disables hang detection)")
    p_scr.add_argument("--rss-budget-mb", type=float, default=None,
                       metavar="MB",
                       help="per-worker resident-set budget; a worker "
                            "over budget is recycled and its failed net "
                            "retried once with the sparse MNA backend "
                            "forced")
    p_scr.add_argument("--retries", type=int, default=2,
                       help="isolated re-attempts for a net that "
                            "crashes its worker process before it is "
                            "recorded as a WorkerCrash failure")
    p_scr.add_argument("--max-failures", type=float, default=None,
                       metavar="N",
                       help="circuit breaker: abort once more than N "
                            "nets fail (N >= 1 is a count, 0 < N < 1 "
                            "a fraction of the population)")
    p_scr.add_argument("--checkpoint", metavar="FILE",
                       help="stream every completed net to an atomic "
                            "JSONL checkpoint file")
    p_scr.add_argument("--resume", action="store_true",
                       help="with --checkpoint: skip nets already in "
                            "the checkpoint and analyze the remainder")
    p_scr.add_argument("--force-resume", action="store_true",
                       help="resume even when the checkpoint was "
                            "written by a run with a different "
                            "configuration (run_hash mismatch)")
    p_scr.add_argument("--audit-rate", type=float, default=0.0,
                       metavar="P",
                       help="re-run a seeded random fraction P of the "
                            "screened nets through the legacy oracle "
                            "kernel and fail on any mismatch beyond "
                            "tolerance (0 disables, 1.0 audits every "
                            "exact-quality net)")
    p_scr.add_argument("--inject", metavar="FILE",
                       help="fault-injection plan (JSON) for chaos "
                            "testing; see repro.resilience.faults")
    p_scr.add_argument("--trace", metavar="FILE",
                       help="write a JSONL span trace of the run "
                            "(inspect with 'repro trace summarize')")
    p_scr.add_argument("--metrics", metavar="FILE",
                       help="write the run's metrics registry as JSON")
    p_scr.add_argument("--manifest", metavar="FILE",
                       help="write a schema-versioned run manifest "
                            "(config, git rev, host, stage timings, "
                            "resources, metrics); render it back with "
                            "'repro report FILE'")
    p_scr.add_argument("--progress", action="store_true",
                       help="render a live per-net progress line on "
                            "stderr (done/total, nets/s, ETA, "
                            "straggler flags)")

    p_bench = sub.add_parser(
        "bench", help="performance benchmarks of the analysis kernels")
    p_bench.add_argument("--perf", action="store_true",
                         help="time the Newton kernels (fast vs legacy) "
                              "on a seeded population and check their "
                              "solver equivalence")
    p_bench.add_argument("--seed", type=int, default=1)
    p_bench.add_argument("--count", type=int, default=2,
                         help="population size (default 2)")
    p_bench.add_argument("--t-stop", type=_value, default="2n",
                         help="transient horizon per net (default 2n)")
    p_bench.add_argument("--quick", action="store_true",
                         help="skip the Rtr / alignment phases")
    p_bench.add_argument("--sparse-dim", type=int, default=2000,
                         metavar="N",
                         help="MNA unknown count of the extracted-scale "
                              "sparse-vs-dense phase (0 disables; "
                              "default 2000)")
    p_bench.add_argument("--screening-count", type=int, default=60,
                         metavar="N",
                         help="population size of the tiered-screening "
                              "phase (0 disables; skipped under "
                              "--quick; default 60)")
    p_bench.add_argument("--screening-threshold", type=_value,
                         default=None, metavar="V",
                         help="noise threshold of the screening phase "
                              "(default 0.6)")
    p_bench.add_argument("--out", default="BENCH_perf.json",
                         metavar="FILE",
                         help="result JSON (default BENCH_perf.json)")
    p_bench.add_argument("--manifest", metavar="FILE",
                         help="write a schema-versioned run manifest "
                              "alongside the bench results")
    p_bench.add_argument("--history", metavar="FILE",
                         help="append a manifest-stamped record to this "
                              "JSONL bench-history ledger")
    p_bench.add_argument("--baseline", action="store_true",
                         help="with --history: compare this run to the "
                              "ledger's rolling baseline and exit "
                              "non-zero on a tracked-phase regression")
    p_bench.add_argument("--regression-threshold", type=float,
                         default=None, metavar="FRAC",
                         help="fractional slowdown that counts as a "
                              "regression (default 0.10)")
    p_bench.add_argument("--history-window", type=_positive_int,
                         default=None, metavar="N",
                         help="prior records folded into the rolling "
                              "baseline median (default 5)")

    p_tr = sub.add_parser(
        "trace", help="inspect trace files produced by --trace")
    tr_sub = p_tr.add_subparsers(dest="trace_command", required=True)
    p_sum = tr_sub.add_parser(
        "summarize",
        help="per-stage time breakdown (count, total/self, p50/p95)")
    p_sum.add_argument("file", help="JSONL trace file")
    p_exp = tr_sub.add_parser(
        "export",
        help="convert a JSONL trace to another format")
    p_exp.add_argument("file", help="JSONL trace file")
    p_exp.add_argument("--chrome", required=True, metavar="OUT",
                       help="write Chrome trace-event JSON here (open "
                            "in ui.perfetto.dev or chrome://tracing)")

    p_rep = sub.add_parser(
        "report",
        help="render a run manifest written by --manifest")
    p_rep.add_argument("manifest", help="manifest JSON file")
    return parser


def _parse_aggressor(spec: str) -> dict:
    parts = spec.split(":")
    if len(parts) < 3:
        raise SystemExit(
            f"bad --aggressor {spec!r}: need name:root:far_end"
            f"[:cell[:slew]]")
    out = {"name": parts[0], "root": parts[1], "far_end": parts[2],
           "cell": "INV_X4", "slew": 120e-12}
    if len(parts) >= 4 and parts[3]:
        out["cell"] = parts[3]
    if len(parts) >= 5 and parts[4]:
        out["slew"] = parse_value(parts[4])
    return out


def _cmd_characterize(args) -> int:
    from repro.core.net import DriverSpec
    from repro.storage import save_characterization

    analyzer = DelayNoiseAnalyzer()
    cells = [c.strip() for c in args.cells.split(",") if c.strip()]
    slews = [parse_value(s.strip()) for s in args.slews.split(",")]
    for name in cells:
        gate = standard_cell(name)
        for slew in slews:
            for rising in (True, False):
                driver = DriverSpec(gate, slew, output_rising=rising)
                analyzer.cache.table_for(driver)
                out.info(f"thevenin: {name} slew={slew / PS:.0f}ps "
                         f"{'rising' if rising else 'falling'}")
        if not args.skip_alignment:
            for rising in (True, False):
                analyzer.register_table(
                    build_alignment_table(gate, victim_rising=rising))
                out.info(f"alignment: {name} victim "
                         f"{'rising' if rising else 'falling'}")
    save_characterization(args.out, analyzer)
    out.info(f"saved {args.out}")
    return 0


def _cmd_analyze(args) -> int:
    from repro.storage import load_characterization, save_characterization

    with open(args.netlist) as handle:
        wires = parse_netlist(handle.read(), name=args.netlist)

    rising = not args.victim_falling
    aggressors = []
    for spec in args.aggressor:
        info = _parse_aggressor(spec)
        aggressors.append(AggressorSpec(
            name=info["name"],
            driver=DriverSpec(gate=standard_cell(info["cell"]),
                              input_slew=info["slew"],
                              output_rising=not rising,
                              input_start=0.2e-9),
            root=info["root"], far_end=info["far_end"]))

    net = CoupledNet(
        name=args.netlist,
        interconnect=wires,
        victim_root=args.victim_root,
        victim_receiver_node=args.victim_receiver,
        victim_driver=DriverSpec(gate=standard_cell(args.victim_cell),
                                 input_slew=args.victim_slew,
                                 output_rising=rising,
                                 input_start=0.2e-9),
        receiver=ReceiverSpec(gate=standard_cell(args.receiver_cell),
                              c_load=args.receiver_load),
        aggressors=aggressors,
    )

    analyzer = DelayNoiseAnalyzer()
    if args.chardb:
        load_characterization(args.chardb, analyzer)
        out.info(f"loaded characterization from {args.chardb}")

    report = analyzer.analyze(net, alignment=args.alignment,
                              use_rtr=not args.no_rtr)
    out.info(f"victim Ceff       : {report.ceff_victim * 1e15:8.1f} fF")
    out.info(f"victim Rth / Rtr  : {report.rth_victim:8.0f} / "
             f"{report.rtr:.0f} ohm")
    out.info(f"composite pulse   : {report.pulse_height:8.3f} V x "
             f"{report.pulse_width / PS:.0f} ps")
    out.info(f"worst peak time   : {report.peak_time * 1e9:8.3f} ns "
             f"({report.alignment_method})")
    out.info(f"extra delay input : {report.extra_delay_input / PS:8.1f} "
             f"ps")
    out.info(f"extra delay output: {report.extra_delay_output / PS:8.1f} "
             f"ps")
    out.info(f"  [Thevenin-only  : "
             f"{report.extra_delay_output_thevenin / PS:.1f} ps]")

    if args.functional:
        func = functional_noise(net, cache=analyzer.cache)
        verdict = "FAIL" if func.fails else "ok"
        out.info(f"functional noise  : {func.input_peak:8.3f} V in, "
                 f"{func.output_peak:.3f} V out -> {verdict}")

    if args.plot:
        out.info("")
        out.info(render_waveforms(
            {"noiseless": report.noiseless_input,
             "noisy": report.noisy_input},
            width=70, height=15))

    if args.save_chardb:
        save_characterization(args.save_chardb, analyzer)
        out.info(f"saved characterization to {args.save_chardb}")
    return 0


def _cmd_screen(args) -> int:
    from repro import trust
    from repro.bench.netgen import NetGenConfig, NetGenerator
    from repro.exec import TooManyFailures, analyze_nets
    from repro.obs.progress import WATCHDOG_FACTOR
    from repro.resilience import FaultPlan, StaleCheckpoint, install_faults

    if args.trace:
        set_tracer(Tracer(enabled=True))
    if args.resume and not args.checkpoint:
        out.error("--resume requires --checkpoint")
        return 2
    if args.force_resume and not args.resume:
        out.error("--force-resume requires --resume")
        return 2
    if not 0.0 <= args.audit_rate <= 1.0:
        out.error(f"--audit-rate must be in [0, 1], got "
                  f"{args.audit_rate}")
        return 2
    if not 0.0 <= args.prune_audit_rate <= 1.0:
        out.error(f"--prune-audit-rate must be in [0, 1], got "
                  f"{args.prune_audit_rate}")
        return 2
    if args.noise_threshold is None and args.prune_audit_rate:
        out.error("--prune-audit-rate requires --noise-threshold")
        return 2
    if args.inject:
        install_faults(FaultPlan.from_file(args.inject))
        out.info(f"# fault injection active from {args.inject}")

    screening_cfg = None
    if args.noise_threshold is not None:
        from repro.core.screening import DEFAULT_GUARD_BAND, ScreeningConfig
        try:
            screening_cfg = ScreeningConfig(
                noise_threshold=args.noise_threshold,
                policy=args.tier_policy,
                guard_band=args.guard_band if args.guard_band is not None
                else DEFAULT_GUARD_BAND)
        except ValueError as exc:
            out.error(str(exc))
            return 2

    presets = {"hp": NetGenConfig.high_performance,
               "screening": NetGenConfig.screening}
    config = presets[args.preset]() if args.preset in presets else None
    generator = NetGenerator(seed=args.seed, config=config)
    analyzer = DelayNoiseAnalyzer()
    nets = generator.population(args.count)

    manifest = None
    if args.manifest:
        manifest = RunManifest("screen", config={
            "seed": args.seed, "count": args.count,
            "preset": args.preset, "jobs": args.jobs,
            "timeout": args.timeout, "retries": args.retries,
            "audit_rate": args.audit_rate,
            "init_timeout": args.init_timeout,
            "watchdog_factor": args.watchdog_factor,
            "rss_budget_mb": args.rss_budget_mb,
            "noise_threshold": args.noise_threshold,
            "tier_policy": args.tier_policy
            if screening_cfg else None,
            "guard_band": screening_cfg.guard_band
            if screening_cfg else None,
            "prune_audit_rate": args.prune_audit_rate,
        })
    tracker = None
    if args.progress or args.manifest:
        # Silent (stream=None) when only the manifest needs the final
        # distribution; live rendering only under --progress.
        tracker = ProgressTracker(
            len(nets),
            stream=progress_stream() if args.progress else None)

    # 0 disables hang detection; unset keeps the library default.
    watchdog = WATCHDOG_FACTOR if args.watchdog_factor is None \
        else (args.watchdog_factor or None)
    rss_budget = int(args.rss_budget_mb * 2**20) \
        if args.rss_budget_mb else None

    # Tiered screening: triage the population first so the pool can
    # prune tier-0/1-settled nets before any worker warms nonlinear
    # state for them.
    decisions_by_name = {}
    screen_stats = None
    tier_labels = None
    if screening_cfg is not None:
        from repro.core.screening import triage
        t_triage = time.perf_counter()
        decisions, screen_stats = triage(nets, screening_cfg)
        if manifest:
            manifest.add_stage("triage",
                               time.perf_counter() - t_triage)
        decisions_by_name = {d.net_name: d for d in decisions}
        tier_labels = {d.net_name: d.tier for d in decisions}

    # Delay-noise analysis fans out over worker processes (warm-started
    # from the parent's tables); the functional screen below reuses the
    # same warmed caches serially.
    try:
        result = analyze_nets(nets, jobs=args.jobs, analyzer=analyzer,
                              timeout=args.timeout, alignment="table",
                              tier_labels=tier_labels,
                              retries=args.retries,
                              max_failures=args.max_failures,
                              checkpoint=args.checkpoint,
                              resume=args.resume,
                              force_resume=args.force_resume,
                              init_timeout=args.init_timeout,
                              rss_budget_bytes=rss_budget,
                              watchdog_factor=watchdog,
                              on_heartbeat=tracker.record
                              if tracker else None)
    except StaleCheckpoint as exc:
        if tracker:
            tracker.finish()
        out.error(f"stale checkpoint: {exc}")
        out.error("re-run with --force-resume to resume anyway, or "
                  "drop --resume to start fresh")
        return 2
    except TooManyFailures as exc:
        if tracker:
            tracker.finish()
        out.error(f"screen aborted: {exc}")
        if args.checkpoint:
            out.error(f"completed nets are in {args.checkpoint}; rerun "
                      f"with --resume after fixing the cause")
        if manifest:
            manifest.write(args.manifest,
                           progress=tracker.snapshot() if tracker
                           else None,
                           extra={"aborted": str(exc)})
            out.error(f"# wrote manifest to {args.manifest}")
        return 1
    if tracker:
        tracker.finish()
    failures = {f.net_name: f for f in result.failures}
    if manifest:
        manifest.add_stage("characterization", result.stats.warm_time)
        manifest.add_stage("analysis", result.stats.wall_time)
    t_func = time.perf_counter()

    header = ("net     aggr  func in/out (V)  func?   "
              "delay in/out (ps)   Rtr/Rth")
    if args.hold:
        header += "   hold speedup (ps)"
    out.info(header)
    violations = 0
    for net, report in zip(nets, result.reports):
        decision = decisions_by_name.get(net.name)
        if decision is not None and decision.pruned and report is None:
            # Pruned below the noise threshold at tier 0/1 — the whole
            # point is to skip the nonlinear engines here, so no
            # functional screen and no table row either (a 10k-net
            # screen would otherwise be 90% "pruned" lines).
            continue
        engine = SuperpositionEngine(net, cache=analyzer.cache)
        func = functional_noise(net, engine=engine)
        verdict = "FAIL" if func.fails else "ok"
        if report is None:
            out.info(f"{net.name:6s}  {len(net.aggressors):4d}  "
                     f"{func.input_peak:6.3f}/{func.output_peak:6.3f}  "
                     f"{verdict:5s}  analysis failed: "
                     f"{failures[net.name].error}")
            continue
        if (screening_cfg is not None and abs(report.pulse_height)
                >= screening_cfg.noise_threshold):
            violations += 1
        line = (f"{net.name:6s}  {len(net.aggressors):4d}  "
                f"{func.input_peak:6.3f}/{func.output_peak:6.3f}  "
                f"{verdict:5s}  "
                f"{report.extra_delay_input / PS:7.1f}/"
                f"{report.extra_delay_output / PS:7.1f}    "
                f"{report.rtr / report.rth_victim:5.2f}")
        if args.hold:
            from repro.core.hold import hold_speedup
            hold = hold_speedup(net, cache=analyzer.cache)
            line += f"   {hold.speedup_output / PS:10.1f}"
        if report.quality != "exact":
            stages = ",".join(sorted({d.stage
                                      for d in report.degradations}))
            line += f"   DEGRADED({stages})"
        out.info(line)
    if manifest:
        manifest.add_stage("functional-screen",
                           time.perf_counter() - t_func)

    stats = result.stats
    summary = (f"# {stats.nets} nets, {stats.failures} failed | "
               f"jobs={stats.jobs} | analysis {stats.wall_time:.2f} s "
               f"({stats.nets_per_second:.2f} nets/s) + "
               f"characterization {stats.warm_time:.2f} s | "
               f"table cache {stats.cache_hits} hits / "
               f"{stats.cache_misses} misses")
    if stats.failures_by_type:
        summary += " | failures: " + ", ".join(
            f"{name} x{count}"
            for name, count in sorted(stats.failures_by_type.items()))
    if stats.degraded:
        summary += (f" | {stats.degraded} degraded (conservative "
                    f"fallbacks in effect)")
    if stats.resumed:
        summary += f" | {stats.resumed} resumed from checkpoint"
    if stats.worker_crashes:
        summary += (f" | {stats.worker_crashes} worker crash(es), "
                    f"{stats.retries} retried")
    if stats.watchdog_kills:
        summary += f" | {stats.watchdog_kills} watchdog kill(s)"
    if stats.rss_flagged:
        summary += (f" | {stats.rss_flagged} worker(s) over RSS budget, "
                    f"{stats.sparse_retries} net(s) retried sparse")
    out.info(summary)

    prune_audit = None
    if screen_stats is not None:
        # The pool's wall time is the tier-2 cost; tiers 0/1 were timed
        # inside triage.
        screen_stats.seconds_by_tier[2] = stats.wall_time
        by_tier = screen_stats.by_tier
        secs = screen_stats.seconds_by_tier
        out.info(
            f"# screening: threshold "
            f"{screening_cfg.noise_threshold:.3f} V, policy "
            f"{screening_cfg.policy} | "
            f"t0 {by_tier[0]} ({secs[0]:.2f} s) / "
            f"t1 {by_tier[1]} ({secs[1]:.2f} s) / "
            f"t2 {by_tier[2]} ({secs[2]:.2f} s) | "
            f"{screen_stats.pruned} pruned "
            f"({100.0 * screen_stats.pruned_fraction:.1f}%), "
            f"{screen_stats.escalated} escalated, "
            f"{violations} above threshold")
        if args.prune_audit_rate:
            from repro.core.screening import audit_prunes
            t_audit = time.perf_counter()
            prune_audit = audit_prunes(
                nets, list(decisions_by_name.values()),
                config=screening_cfg, analyzer=analyzer,
                rate=args.prune_audit_rate, seed=args.seed,
                analyze_kwargs={"alignment": "table"})
            if manifest:
                manifest.add_stage("prune-audit",
                                   time.perf_counter() - t_audit)
            out.info(f"# prune audit: {prune_audit['checked']}/"
                     f"{prune_audit['eligible']} pruned net(s) re-run "
                     f"at tier 2, {prune_audit['unsound_prunes']} "
                     f"unsound")

    audit = None
    if args.audit_rate:
        reports_by_name = {net.name: report
                           for net, report in zip(nets, result.reports)}
        t_audit = time.perf_counter()
        audit = trust.run_audit(nets, reports_by_name, analyzer,
                                rate=args.audit_rate, seed=args.seed,
                                analyze_kwargs={"alignment": "table"})
        if manifest:
            manifest.add_stage("audit",
                               time.perf_counter() - t_audit)
        out.info(f"# audit: {audit['checked']}/{audit['eligible']} "
                 f"eligible net(s) re-run through the legacy oracle, "
                 f"{len(audit['mismatches'])} mismatch(es)")

    if args.trace:
        count = current_tracer().export_jsonl(args.trace)
        out.info(f"# wrote {count} spans to {args.trace}")
    if args.metrics:
        atomic_write_json(args.metrics, metrics().snapshot())
        out.info(f"# wrote metrics to {args.metrics}")
    if manifest:
        degraded_stages = sorted({d.stage for report in result.reports
                                  if report is not None
                                  for d in report.degradations})
        extra = {}
        if audit is not None:
            extra["audit"] = audit
        if screen_stats is not None:
            extra["screening"] = dict(screen_stats.to_dict(),
                                      violations=violations)
            if prune_audit is not None:
                extra["screening"]["audit"] = prune_audit
        manifest.write(
            args.manifest,
            failures=result.failures,
            degraded={"total": stats.degraded,
                      "stages": degraded_stages},
            progress=tracker.snapshot() if tracker else None,
            extra=extra or None)
        out.info(f"# wrote manifest to {args.manifest}")
    if audit is not None and not audit["ok"]:
        out.error(f"audit failed: {len(audit['mismatches'])} "
                  f"mismatch(es) against the legacy oracle")
        return 1
    if prune_audit is not None and not prune_audit["ok"]:
        out.error(f"prune audit failed: "
                  f"{prune_audit['unsound_prunes']} unsound prune(s) — "
                  f"a pruned net measured at/above the noise threshold")
        return 1
    return 0 if not failures else 1


def _cmd_bench(args) -> int:
    from repro.bench.history import (
        DEFAULT_WINDOW,
        REGRESSION_THRESHOLD,
        append_history,
        detect_regressions,
        format_regressions,
        history_record,
        load_history,
    )
    from repro.bench.perf import SCREEN_THRESHOLD, format_perf, run_perf

    if not args.perf:
        out.error("nothing to do: pass --perf")
        return 2
    if args.baseline and not args.history:
        out.error("--baseline requires --history")
        return 2
    threshold = args.regression_threshold \
        if args.regression_threshold is not None else REGRESSION_THRESHOLD
    window = args.history_window \
        if args.history_window is not None else DEFAULT_WINDOW

    screening_threshold = args.screening_threshold \
        if args.screening_threshold is not None else SCREEN_THRESHOLD
    manifest = None
    if args.manifest:
        manifest = RunManifest("bench", config={
            "seed": args.seed, "count": args.count,
            "t_stop": args.t_stop, "quick": args.quick,
            "sparse_dim": args.sparse_dim,
            "screening_count": args.screening_count,
            "screening_threshold": screening_threshold,
        })
    with manifest.stage("perf") if manifest else nullcontext():
        payload = run_perf(seed=args.seed, count=args.count,
                           t_stop=args.t_stop, skip_analysis=args.quick,
                           sparse_dim=args.sparse_dim,
                           screening_count=args.screening_count,
                           screening_threshold=screening_threshold)
    atomic_write_json(args.out, payload)
    out.info(format_perf(payload))
    out.info(f"# wrote {args.out}")
    if manifest:
        extra = {"speedup": payload.get("speedup", {}),
                 "equivalence": payload.get("equivalence", {})}
        if "screening" in payload:
            extra["screening"] = payload["screening"]
        manifest.write(args.manifest, extra=extra)
        out.info(f"# wrote manifest to {args.manifest}")

    regressions = []
    if args.history:
        prior = load_history(args.history)
        record = history_record(payload)
        total = append_history(args.history, record)
        out.info(f"# appended history entry #{total} to {args.history}")
        if args.baseline:
            regressions = detect_regressions(
                prior, record, threshold=threshold, window=window)
            out.info(format_regressions(regressions,
                                        threshold=threshold))

    if not payload["equivalence"]["within_tolerance"]:
        out.error("solver equivalence drift: fast kernel deviates from "
                  "the legacy reference beyond tolerance")
        return 1
    if not payload["equivalence"].get("batched_within_tolerance", True):
        out.error("batched alignment drift: batched sweep deviates from "
                  "the serial reference beyond tolerance")
        return 1
    if not payload.get("sparse", {}).get("within_tolerance", True):
        out.error("sparse backend drift: sparse transient deviates from "
                  "the dense reference beyond tolerance")
        return 1
    trust_phase = payload.get("trust", {})
    if not trust_phase.get("bit_identical", True):
        out.error("trust layer drift: verification changed an accepted "
                  "clean solve (must be bit-identical on or off)")
        return 1
    if not trust_phase.get("within_budget", True):
        out.error(f"trust layer overhead "
                  f"{trust_phase['overhead_fraction']:+.1%} exceeds the "
                  f"{trust_phase['budget']:.0%} clean-path budget")
        return 1
    if not payload.get("screening", {}).get("sound", True):
        out.error(f"screening soundness: "
                  f"{payload['screening']['unsound_prunes']} pruned "
                  f"net(s) measured at/above the noise threshold at "
                  f"tier 2")
        return 1
    if regressions:
        return 1
    return 0


def _cmd_trace(args) -> int:
    records = read_trace(args.file)
    if not records:
        out.warning(f"{args.file}: no spans")
        return 1
    if args.trace_command == "export":
        count = write_chrome_trace(args.chrome, records)
        out.info(f"# wrote {count} events to {args.chrome} "
                 f"(open in ui.perfetto.dev)")
        return 0
    out.info(format_summary(records))
    return 0


def _cmd_report(args) -> int:
    try:
        payload = load_manifest(args.manifest)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        out.error(f"cannot read manifest: {exc}")
        return 1
    out.info(format_manifest(payload))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    if argv is None:
        argv = sys.argv[1:]
    if not argv:
        # Bare `repro`: show the help text, exit like a usage error.
        parser.print_help(sys.stderr)
        return 2
    args = parser.parse_args(argv)
    configure_cli_logging(verbose=args.verbose, quiet=args.quiet)
    handlers = {
        "characterize": _cmd_characterize,
        "analyze": _cmd_analyze,
        "screen": _cmd_screen,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
