"""Switching-window arithmetic."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Window"]


@dataclass(frozen=True)
class Window:
    """A closed interval of possible switching times ``[earliest, latest]``.

    Windows are the currency of coupling-aware STA: a net may switch
    anywhere inside its window, so two nets can interact exactly when
    their windows (suitably padded by waveform spans) overlap.
    """

    earliest: float
    latest: float

    def __post_init__(self):
        if self.latest < self.earliest:
            raise ValueError(
                f"window latest ({self.latest}) before earliest "
                f"({self.earliest})")

    @property
    def span(self) -> float:
        return self.latest - self.earliest

    def shifted(self, delta: float) -> "Window":
        return Window(self.earliest + delta, self.latest + delta)

    def padded(self, before: float, after: float = None) -> "Window":
        """Extend by ``before`` on the left and ``after`` on the right."""
        if after is None:
            after = before
        return Window(self.earliest - before, self.latest + after)

    def overlaps(self, other: "Window") -> bool:
        return self.earliest <= other.latest and \
            other.earliest <= self.latest

    def intersection(self, other: "Window") -> "Window | None":
        lo = max(self.earliest, other.earliest)
        hi = min(self.latest, other.latest)
        if lo > hi:
            return None
        return Window(lo, hi)

    def union_hull(self, other: "Window") -> "Window":
        """Smallest window containing both."""
        return Window(min(self.earliest, other.earliest),
                      max(self.latest, other.latest))

    def contains(self, t: float) -> bool:
        return self.earliest <= t <= self.latest

    def clamp(self, t: float) -> float:
        return min(max(t, self.earliest), self.latest)

    @staticmethod
    def propagate(input_window: "Window", delay_min: float,
                  delay_max: float) -> "Window":
        """Window after an edge with [delay_min, delay_max] delay."""
        return Window(input_window.earliest + delay_min,
                      input_window.latest + delay_max)

    @staticmethod
    def merge(windows: list["Window"]) -> "Window":
        """Hull of several fan-in windows (earliest-min / latest-max)."""
        if not windows:
            raise ValueError("cannot merge zero windows")
        result = windows[0]
        for w in windows[1:]:
            result = result.union_hull(w)
        return result
