"""Topological timing graph.

Nodes are named timing points (primary inputs, gate outputs / net ends);
edges carry ``[delay_min, delay_max]`` intervals (gate or interconnect
delays).  Switching windows propagate forward in topological order:
through an edge a window shifts by the delay interval, and at a fan-in
node the merged window is the hull of all incoming windows — the
standard windows formulation of the paper's reference [1] (Shepard et
al., "Global Harmony").
"""

from __future__ import annotations

import networkx as nx

from repro.sta.windows import Window

__all__ = ["TimingGraph"]


class TimingGraph:
    """A DAG of timing points with interval delays."""

    def __init__(self):
        self._graph = nx.DiGraph()
        self._inputs: dict[str, Window] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str, window: Window) -> None:
        """Declare a primary input with its switching window."""
        self._graph.add_node(name)
        self._inputs[name] = window

    def add_edge(self, src: str, dst: str, delay_min: float,
                 delay_max: float, *, name: str | None = None) -> None:
        """Add a timing arc; ``name`` identifies it for delay updates."""
        if delay_max < delay_min:
            raise ValueError("delay_max below delay_min")
        self._graph.add_edge(src, dst, delay_min=delay_min,
                             delay_max=delay_max,
                             name=name or f"{src}->{dst}")
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(src, dst)
            raise ValueError(f"edge {src}->{dst} would create a cycle")

    def set_edge_delay(self, src: str, dst: str, delay_min: float,
                       delay_max: float) -> None:
        if not self._graph.has_edge(src, dst):
            raise KeyError(f"no edge {src}->{dst}")
        self._graph[src][dst]["delay_min"] = delay_min
        self._graph[src][dst]["delay_max"] = delay_max

    def edge_delay(self, src: str, dst: str) -> tuple[float, float]:
        data = self._graph[src][dst]
        return data["delay_min"], data["delay_max"]

    @property
    def nodes(self) -> list[str]:
        return list(self._graph.nodes)

    def has_node(self, name: str) -> bool:
        return self._graph.has_node(name)

    def has_edge(self, src: str, dst: str) -> bool:
        return self._graph.has_edge(src, dst)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def propagate_windows(self) -> dict[str, Window]:
        """Forward-propagate switching windows to every node.

        Nodes unreachable from any primary input get no window (they
        never switch) and are omitted from the result.
        """
        if not self._inputs:
            raise ValueError("no primary inputs declared")
        windows: dict[str, Window] = dict(self._inputs)
        for node in nx.topological_sort(self._graph):
            incoming = []
            if node in self._inputs:
                incoming.append(self._inputs[node])
            for pred in self._graph.predecessors(node):
                if pred in windows:
                    d = self._graph[pred][node]
                    incoming.append(Window.propagate(
                        windows[pred], d["delay_min"], d["delay_max"]))
            if incoming:
                windows[node] = Window.merge(incoming)
        return windows

    def latest_arrival(self, node: str) -> float:
        """Worst-case (latest) arrival at a node."""
        windows = self.propagate_windows()
        if node not in windows:
            raise KeyError(f"{node} is unreachable from any input")
        return windows[node].latest

    def required_times(self, requirements: dict[str, float]
                       ) -> dict[str, float]:
        """Backward-propagate required arrival times.

        ``requirements`` gives the latest allowed arrival at endpoint
        nodes (e.g. capture-flop setup deadlines).  Every node that can
        reach a constrained endpoint gets
        ``min over fanout (required(succ) - delay_max)``; a constrained
        node takes the tighter of its own requirement and its fanout's.
        """
        if not requirements:
            raise ValueError("no endpoint requirements given")
        unknown = set(requirements) - set(self._graph.nodes)
        if unknown:
            raise KeyError(f"unknown endpoint(s): {sorted(unknown)}")
        required: dict[str, float] = {}
        for node in reversed(list(nx.topological_sort(self._graph))):
            candidates = []
            if node in requirements:
                candidates.append(requirements[node])
            for succ in self._graph.successors(node):
                if succ in required:
                    d = self._graph[node][succ]["delay_max"]
                    candidates.append(required[succ] - d)
            if candidates:
                required[node] = min(candidates)
        return required

    def slacks(self, requirements: dict[str, float]) -> dict[str, float]:
        """Setup slack per node: required time minus latest arrival.

        Only nodes with both a window and a required time appear.
        Negative slack marks a violated path — the quantity that grows
        more negative when coupling delta delays are applied.
        """
        windows = self.propagate_windows()
        required = self.required_times(requirements)
        return {
            node: required[node] - windows[node].latest
            for node in required if node in windows
        }

    def worst_slack(self, requirements: dict[str, float]) -> float:
        """Minimum slack over all constrained, reachable nodes."""
        slacks = self.slacks(requirements)
        if not slacks:
            raise ValueError("no constrained node is reachable")
        return min(slacks.values())

    def critical_path(self, node: str) -> list[str]:
        """Nodes along the max-delay path from an input to ``node``."""
        windows = self.propagate_windows()
        if node not in windows:
            raise KeyError(f"{node} is unreachable from any input")
        path = [node]
        current = node
        while current not in self._inputs or \
                any(True for _ in self._graph.predecessors(current)):
            best_pred = None
            target = windows[current].latest
            for pred in self._graph.predecessors(current):
                if pred not in windows:
                    continue
                d = self._graph[pred][current]["delay_max"]
                if abs(windows[pred].latest + d - target) < 1e-18:
                    best_pred = pred
                    break
            if best_pred is None:
                break
            path.append(best_pred)
            current = best_pred
        return list(reversed(path))
