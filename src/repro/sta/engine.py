"""Coupling-aware STA: the windows / delta-delay fixed point.

The delta delay a victim net suffers depends on where its aggressors can
switch (their windows); but the windows themselves depend on all delta
delays upstream.  Following the paper's references [8] (Sapatnekar,
"Capturing the Effect of Crosstalk on Delay") and [9] (TACO), the engine
iterates:

1. propagate switching windows with the current edge delays,
2. for every coupled victim edge, ask a *delta model* for the extra
   delay achievable given the victim's and aggressors' windows,
3. write ``base_delay + delta`` back onto the victim edge,

until no window moves.  Deltas are non-negative and windows only grow,
so the iteration increases monotonically and converges (in practice —
and in the paper — within a few passes).

Two delta models are provided:

* :class:`OverlapDeltaModel` — binary: the victim gets its full
  worst-case delta iff any aggressor window overlaps the victim window
  (padded by the noise-interaction span).
* :class:`SweepDeltaModel` — quantitative: uses a delay-vs-alignment
  curve (an :class:`~repro.core.exhaustive.AlignmentSweep` or any
  callable) and maximizes it over the *feasible* peak positions allowed
  by the aggressor windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.sta.graph import TimingGraph
from repro.sta.windows import Window

__all__ = ["CouplingBinding", "OverlapDeltaModel", "SweepDeltaModel",
           "CoupledSta"]


@dataclass
class CouplingBinding:
    """Associates a victim timing arc with its aggressors.

    ``victim_edge`` is the (src, dst) arc whose max delay grows under
    coupling; ``aggressor_nodes`` are the graph nodes whose windows
    gate the aggressors' switching.  ``base_delay`` is the noiseless max
    delay of the arc.
    """

    victim_edge: tuple[str, str]
    aggressor_nodes: list[str]
    base_delay: float


class DeltaModel(Protocol):
    def delta(self, binding: CouplingBinding, victim: Window,
              aggressors: list[Window]) -> float: ...


@dataclass
class OverlapDeltaModel:
    """Full worst-case delta iff any aggressor window overlaps.

    ``interaction_pad`` widens the victim window on both sides by the
    noise-interaction span (pulse width + victim transition time), since
    an aggressor switching slightly outside the victim's own window can
    still land noise on the transition.
    """

    worst_delta: float
    interaction_pad: float = 0.0

    def delta(self, binding: CouplingBinding, victim: Window,
              aggressors: list[Window]) -> float:
        probe = victim.padded(self.interaction_pad)
        if any(probe.overlaps(a) for a in aggressors):
            return self.worst_delta
        return 0.0


@dataclass
class SweepDeltaModel:
    """Delta from a delay-vs-peak-time curve, maximized over feasibility.

    ``curve`` maps an *offset of the noise peak relative to the victim's
    50% crossing* to extra delay (e.g. built from an
    :class:`~repro.core.exhaustive.AlignmentSweep`).  The feasible peak
    offsets follow from each aggressor's window relative to the victim's
    latest arrival; the model returns the best achievable delta.
    """

    curve: Callable[[float], float]
    #: Offsets (relative to the victim crossing) sampled for the max.
    offsets: list[float] = field(default_factory=list)
    #: Delay from an aggressor's switching time to its noise peak on the
    #: victim (injection latency).
    injection_delay: float = 0.0

    def delta(self, binding: CouplingBinding, victim: Window,
              aggressors: list[Window]) -> float:
        if not self.offsets:
            raise ValueError("SweepDeltaModel needs candidate offsets")
        t_victim = victim.latest
        best = 0.0
        for aggressor in aggressors:
            peak_window = aggressor.shifted(self.injection_delay)
            for offset in self.offsets:
                t_peak = t_victim + offset
                if peak_window.contains(t_peak):
                    best = max(best, max(self.curve(offset), 0.0))
        return best


class CoupledSta:
    """Fixed-point iteration of windows and coupling deltas."""

    def __init__(self, graph: TimingGraph,
                 bindings: list[CouplingBinding],
                 model: DeltaModel):
        self.graph = graph
        self.bindings = bindings
        self.model = model
        self.iterations = 0
        self.deltas: dict[tuple[str, str], float] = {}

    def run(self, *, max_iterations: int = 10,
            tolerance: float = 1e-15) -> dict[str, Window]:
        """Iterate to convergence; returns the final windows."""
        # Start from noiseless delays.
        for binding in self.bindings:
            src, dst = binding.victim_edge
            d_min, _ = self.graph.edge_delay(src, dst)
            self.graph.set_edge_delay(src, dst, d_min, binding.base_delay)
            self.deltas[binding.victim_edge] = 0.0

        windows = self.graph.propagate_windows()
        for self.iterations in range(1, max_iterations + 1):
            changed = False
            for binding in self.bindings:
                src, dst = binding.victim_edge
                victim = windows.get(dst)
                if victim is None:
                    continue
                aggressors = [windows[a] for a in binding.aggressor_nodes
                              if a in windows]
                delta = self.model.delta(binding, victim, aggressors)
                if abs(delta - self.deltas[binding.victim_edge]) \
                        > tolerance:
                    d_min, _ = self.graph.edge_delay(src, dst)
                    self.graph.set_edge_delay(
                        src, dst, d_min, binding.base_delay + delta)
                    self.deltas[binding.victim_edge] = delta
                    changed = True
            windows = self.graph.propagate_windows()
            if not changed:
                break
        return windows
