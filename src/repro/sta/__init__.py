"""Static timing analysis with switching windows and coupling iteration.

The paper's alignment search runs "within the constraints of the
switching timing windows that are calculated during timing analysis",
and notes (after its references [8] Sapatnekar and [9] TACO) that the
windows and the coupling-induced delta delays are mutually dependent —
iterating the two converges in a few passes.  This package provides that
substrate:

* :mod:`repro.sta.windows` — arrival/switching window arithmetic.
* :mod:`repro.sta.graph` — a topological timing graph over gates/nets.
* :mod:`repro.sta.engine` — the coupling-aware fixed-point iteration,
  with pluggable delta-delay models (binary overlap, or driven by an
  exhaustive :class:`~repro.core.exhaustive.AlignmentSweep`).
"""

from repro.sta.windows import Window
from repro.sta.graph import TimingGraph
from repro.sta.engine import (
    CoupledSta,
    CouplingBinding,
    OverlapDeltaModel,
    SweepDeltaModel,
)

__all__ = [
    "Window",
    "TimingGraph",
    "CoupledSta",
    "CouplingBinding",
    "OverlapDeltaModel",
    "SweepDeltaModel",
]
