"""Parallel per-net analysis: a crash-safe process-pool map over nets.

The paper's flow is embarrassingly parallel across nets — every
:meth:`DelayNoiseAnalyzer.analyze` call is independent once the shared
characterization tables exist.  :func:`analyze_nets` exploits that:

* ``jobs=1`` runs serially in-process — no subprocess, no pickling, the
  exact code path a plain loop would take;
* ``jobs>1`` fans the nets out over a :class:`ProcessPoolExecutor`
  whose workers are *warm-started* from a characterization snapshot
  (see :mod:`repro.exec.snapshot`), so no worker ever re-runs a
  non-linear characterization simulation.

Results come back in input order regardless of completion order, and
serial/parallel runs produce bit-identical reports.  The run degrades
instead of dying:

* a net that raises (or exceeds the optional per-net wall-clock
  ``timeout``) becomes a structured :class:`NetFailure` record;
* a worker-process death (``BrokenProcessPool``) rebuilds the pool and
  re-probes the in-flight nets one at a time to identify the culprit,
  which — after ``retries`` isolated re-attempts with exponential
  backoff — becomes a ``NetFailure(error_type="WorkerCrash")`` while
  every other net still completes;
* a parent-side heartbeat watchdog derives an adaptive per-net hang
  deadline from the completed-net p95 (clamped; static ``timeout``
  until enough samples exist) and kills/quarantines a stuck worker —
  the hung net becomes a ``NetFailure(error_type="WorkerHang")``, the
  innocent in-flight nets are resubmitted, and everything already
  completed is safe in the checkpoint stream;
* a per-worker RSS budget recycles bloating workers; a net that both
  failed and blew the budget is retried once with the sparse MNA
  backend forced;
* the worker warm-start itself runs under a coarse deadline — a worker
  that cannot initialize returns structured ``WorkerInitTimeout``
  failures instead of stalling the run;
* a ``max_failures`` circuit breaker aborts a run whose failure count
  (or fraction) shows something systemic rather than per-net;
* ``checkpoint=`` streams every completed net to an atomic JSONL file
  (:mod:`repro.resilience.checkpoint`) and ``resume=True`` skips the
  nets already recorded there — a killed run picks up where it
  stopped, bit-identically.  The checkpoint header carries a run-
  identity hash, so ``resume`` refuses a checkpoint written under a
  different configuration (``force_resume`` overrides).

:class:`ExecStats` reports throughput, cache traffic, wall time, and
the resilience traffic (crashes, retries, resumed nets).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.analysis import DelayNoiseAnalyzer, NoiseReport
from repro.core.net import CoupledNet
from repro.exec.snapshot import build_snapshot, restore_analyzer, warm_analyzer
from repro.obs import (
    Heartbeat,
    Tracer,
    current_tracer,
    get_logger,
    metrics,
    peak_rss_bytes,
    sample_resources,
    set_tracer,
)
from repro.obs.progress import (
    WATCHDOG_FACTOR,
    AdaptiveDeadline,
    ProgressTracker,
)
from repro.obs.resources import reset_sampler
from repro.resilience import (
    CheckpointWriter,
    FaultPlan,
    StaleCheckpoint,
    active_plan,
    fire,
    install_faults,
    load_checkpoint,
    load_checkpoint_header,
    mark_worker_process,
)
from repro.storage import noise_report_from_dict, noise_report_to_dict

__all__ = ["NetFailure", "NetTimeout", "TooManyFailures", "ExecStats",
           "ExecResult", "analyze_nets"]

#: How often the parent-side watchdog wakes up to look for overdue or
#: over-budget workers while futures are outstanding.
_WATCHDOG_POLL_S = 0.25

log = get_logger("exec.pool")


class NetTimeout(Exception):
    """One net's analysis exceeded the per-net wall-clock budget."""


class TooManyFailures(RuntimeError):
    """The ``max_failures`` circuit breaker tripped.

    Raised when the failure count/fraction shows the run is sick as a
    whole (bad snapshot, broken library, wrong deck) — finishing the
    remaining nets would only produce more failures.  Completed nets
    are already in the checkpoint (when one is configured), so a fixed
    run can ``resume`` from them.
    """


@dataclass(frozen=True)
class NetFailure:
    """One net's analysis failure, captured without killing the run."""

    net_name: str
    error: str        #: ``"ExceptionType: message"``
    traceback: str    #: full formatted traceback from the failing process
    error_type: str = ""  #: exception class name (``"NetTimeout"``, ...)

    def to_dict(self) -> dict:
        return {"net_name": self.net_name, "error": self.error,
                "traceback": self.traceback,
                "error_type": self.error_type}

    @classmethod
    def from_dict(cls, data: dict) -> "NetFailure":
        return cls(net_name=data["net_name"], error=data["error"],
                   traceback=data.get("traceback", ""),
                   error_type=data.get("error_type", ""))


@dataclass
class ExecStats:
    """Throughput and cache accounting for one :func:`analyze_nets` run.

    ``cache_hits``/``cache_misses`` aggregate Thevenin *and* alignment
    table traffic across all processes.  A warm-started worker should
    show zero misses; a non-zero count means characterization ran inside
    a worker — visible here instead of silently slow.
    """

    jobs: int
    nets: int = 0
    failures: int = 0
    wall_time: float = 0.0
    warm_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Exception class name -> count, so a summary can tell timeouts
    #: (``NetTimeout``) from solver failures (``ConvergenceError``) at
    #: a glance.
    failures_by_type: dict[str, int] = field(default_factory=dict)
    #: Nets answered from the resume checkpoint instead of analyzed.
    resumed: int = 0
    #: Worker-pool rebuilds after a worker process died.
    worker_crashes: int = 0
    #: Isolated re-submissions of nets suspected in a crash.
    retries: int = 0
    #: Nets whose reports carry ``quality="degraded"``.
    degraded: int = 0
    #: Peak resident-set size (bytes) over every participating process
    #: (serial: this one; jobs>1: the max across the workers).
    peak_rss_bytes: int = 0
    #: In-flight nets killed by the parent-side hang watchdog.
    watchdog_kills: int = 0
    #: Heartbeats that exceeded the per-worker RSS budget.
    rss_flagged: int = 0
    #: Nets re-submitted with the sparse backend forced after their
    #: worker blew the RSS budget.
    sparse_retries: int = 0
    #: Nets pruned by the tiered screen (``tier_labels`` < 2): never
    #: dispatched, never warmed, no report and no failure.
    pruned: int = 0
    #: Pruned-net tally per screening tier (0 and 1 only).
    pruned_by_tier: dict[int, int] = field(default_factory=dict)

    @property
    def nets_per_second(self) -> float:
        if self.wall_time <= 0.0:
            return 0.0
        return self.nets / self.wall_time


@dataclass
class ExecResult:
    """Outcome of :func:`analyze_nets`, in input-net order.

    ``reports[i]`` corresponds to ``nets[i]``; it is ``None`` when that
    net produced a :class:`NetFailure` (failures are also listed in
    input order) — or, in a tiered screening run, when the net was
    *pruned* (``tier_labels`` < 2): pruned nets carry neither report
    nor failure, which :meth:`analyzed` distinguishes.
    """

    reports: list[NoiseReport | None]
    failures: list[NetFailure] = field(default_factory=list)
    stats: ExecStats = field(default_factory=lambda: ExecStats(jobs=1))

    @property
    def ok(self) -> bool:
        return not self.failures

    def analyzed(self, net_name: str) -> bool:
        """False when the tiered screen pruned this net (no report,
        no failure — by design, not by accident)."""
        reports, failures = self._index()
        return net_name in reports or net_name in failures

    def _index(self) -> tuple[dict, dict]:
        """O(1) name lookup tables, built once on first use."""
        cached = self.__dict__.get("_by_name")
        if cached is None:
            reports = {r.net_name: r for r in self.reports
                       if r is not None}
            failures = {f.net_name: f for f in self.failures}
            cached = (reports, failures)
            self.__dict__["_by_name"] = cached
        return cached

    def report(self, net_name: str) -> NoiseReport:
        """The report for one net, by name (constant-time)."""
        reports, failures = self._index()
        found = reports.get(net_name)
        if found is not None:
            return found
        failure = failures.get(net_name)
        if failure is not None:
            raise KeyError(f"net {net_name!r} failed: {failure.error}")
        raise KeyError(f"no net named {net_name!r} in this run")

    def raise_on_failure(self) -> None:
        """Raise ``RuntimeError`` summarizing failures, if there are any."""
        if not self.failures:
            return
        lines = [f"  {f.net_name}: {f.error}" for f in self.failures]
        raise RuntimeError(
            f"{len(self.failures)} of {self.stats.nets} nets failed:\n"
            + "\n".join(lines))


# ----------------------------------------------------------------------
# Per-net execution (shared by the serial path and the workers)
# ----------------------------------------------------------------------
@contextmanager
def _time_limit(seconds: float | None):
    """Raise :class:`NetTimeout` if the body runs longer than ``seconds``.

    Implemented with ``SIGALRM``/``setitimer``, which only works in a
    main thread (process-pool workers and the serial path both qualify);
    elsewhere the limit is skipped rather than mis-armed.  A pending
    outer ``ITIMER_REAL`` is captured from ``setitimer``'s return value
    and re-armed with its remaining time on exit, so nested limits
    leave the outer deadline ticking instead of silently disarming it.
    """
    if not seconds or seconds <= 0 or \
            threading.current_thread() is not threading.main_thread():
        yield
        return

    def _on_alarm(signum, frame):
        raise NetTimeout(f"net analysis exceeded {seconds:g} s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    old_delay, old_interval = signal.setitimer(signal.ITIMER_REAL, seconds)
    armed_at = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if old_delay > 0.0:
            remaining = old_delay - (time.monotonic() - armed_at)
            # The outer deadline may already have lapsed while we held
            # the timer; re-arm minimally so it still fires.
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 1e-6),
                             old_interval)


def _cache_counters(analyzer: DelayNoiseAnalyzer) -> tuple[int, int]:
    return (analyzer.cache.hits + analyzer.table_hits,
            analyzer.cache.misses + analyzer.table_misses)


def _analyze_one(analyzer: DelayNoiseAnalyzer, net: CoupledNet,
                 timeout: float | None, analyze_kwargs: dict
                 ) -> tuple[NoiseReport | None, NetFailure | None]:
    try:
        with _time_limit(timeout):
            # In a worker a "crash" fault kills the process here; in
            # the serial path it raises WorkerCrash into the except
            # below, so jobs=1 classifies the net identically.
            fire("exec.worker", net.name)
            return analyzer.analyze(net, **analyze_kwargs), None
    except Exception as exc:
        log.debug("net %s failed: %s: %s", net.name,
                  type(exc).__name__, exc)
        return None, NetFailure(
            net_name=net.name,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            error_type=type(exc).__name__)


# ----------------------------------------------------------------------
# Worker protocol
# ----------------------------------------------------------------------
# Populated once per worker process by the pool initializer; workers then
# analyze any number of nets against the same warm analyzer.
_WORKER_STATE: dict = {}


def _worker_init(snapshot: dict, analyze_kwargs: dict,
                 timeout: float | None, trace: bool,
                 fault_plan: FaultPlan | None,
                 init_timeout: float | None = None) -> None:
    # Workers may be forked, inheriting the parent's tracer buffer and
    # metric values — start both from scratch so per-net drains report
    # only this worker's activity (the parent merges them back).
    set_tracer(Tracer(enabled=trace))
    mark_worker_process()
    if fault_plan is not None:
        # A fresh copy per worker: fire counters are per-process.
        install_faults(fault_plan)
    # The warm-start restore is bounded by a coarse deadline: a huge or
    # corrupt snapshot must not stall the whole run silently at
    # initialization.  A failed init is *captured*, not raised — an
    # initializer exception would break the pool and be misattributed
    # to whatever nets were in flight; instead every net handed to this
    # worker returns a structured failure naming the init problem.
    _WORKER_STATE.pop("init_error", None)
    _WORKER_STATE.pop("analyzer", None)
    try:
        with _time_limit(init_timeout):
            fire("exec.worker_init", "init")
            _WORKER_STATE["analyzer"] = restore_analyzer(snapshot)
    except NetTimeout:
        _WORKER_STATE["init_error"] = (
            "WorkerInitTimeout",
            f"worker warm-start exceeded {init_timeout:g} s")
    except Exception as exc:
        _WORKER_STATE["init_error"] = (
            type(exc).__name__,
            f"worker warm-start failed: {exc}")
    metrics().reset()
    # Forked workers inherit the parent's CPU baseline; re-prime so the
    # first net's resource deltas are this worker's own.
    reset_sampler()
    sample_resources()
    _WORKER_STATE["analyze_kwargs"] = analyze_kwargs
    _WORKER_STATE["timeout"] = timeout


def _worker_run(net: CoupledNet):
    """Analyze one net and ship its telemetry back with the result.

    Alongside the report/failure the worker returns its cache-counter
    deltas, a drained metrics snapshot, its drained span buffer and a
    :class:`Heartbeat`, so the parent can merge a ``jobs=N`` run's
    telemetry into the same registry/trace a serial run would have
    produced and render live progress as nets complete.
    """
    init_error = _WORKER_STATE.get("init_error")
    if init_error is not None:
        error_type, message = init_error
        sample_resources()
        heartbeat = Heartbeat(net=net.name, seconds=0.0,
                              rss_bytes=peak_rss_bytes(),
                              pid=os.getpid(), failed=True)
        return (None,
                NetFailure(net_name=net.name,
                           error=f"{error_type}: {message}",
                           traceback="", error_type=error_type),
                0, 0, metrics().drain(), current_tracer().drain(),
                heartbeat)
    analyzer = _WORKER_STATE["analyzer"]
    hits0, misses0 = _cache_counters(analyzer)
    t0 = time.perf_counter()
    report, failure = _analyze_one(
        analyzer, net, _WORKER_STATE["timeout"],
        _WORKER_STATE["analyze_kwargs"])
    seconds = time.perf_counter() - t0
    hits1, misses1 = _cache_counters(analyzer)
    # Sample *before* the drain so the resource instruments ride the
    # snapshot back to the parent registry.
    sample_resources()
    heartbeat = Heartbeat(net=net.name, seconds=seconds,
                          rss_bytes=peak_rss_bytes(), pid=os.getpid(),
                          failed=failure is not None)
    return (report, failure, hits1 - hits0, misses1 - misses0,
            metrics().drain(), current_tracer().drain(), heartbeat)


def _worker_run_sparse(net: CoupledNet):
    """:func:`_worker_run` with the sparse MNA backend forced.

    The RSS-budget retry path: a net whose analysis bloated its worker
    past the budget (dense fill on an unexpectedly large extracted net
    is the usual culprit) is re-run in a fresh worker with every system
    built sparse, trading per-step speed for a bounded footprint.
    """
    from repro.circuit.mna import sparse_threshold

    with sparse_threshold(1):
        return _worker_run(net)


# ----------------------------------------------------------------------
# Checkpoint codecs (NetFailure lives here, NoiseReport in repro.storage)
# ----------------------------------------------------------------------
def _decode_checkpoint_record(record: dict
                              ) -> tuple[NoiseReport | None,
                                         NetFailure | None]:
    if record["kind"] == "report":
        return noise_report_from_dict(record["data"]), None
    return None, NetFailure.from_dict(record["data"])


def _run_identity(nets, analyzer: DelayNoiseAnalyzer,
                  analyze_kwargs: dict,
                  tier_labels: dict[str, int] | None = None) -> str:
    """Digest of everything that shapes this run's numerical results.

    Stamped into the checkpoint header so ``resume`` can refuse a
    checkpoint written under a different configuration (net population,
    driver/receiver specs, analyzer dt, characterization or analysis
    knobs) — mixing results across configurations would silently break
    the "resumed == uninterrupted" bit-identity guarantee.  Gate
    internals are represented by cell name: a changed cell library is
    out of scope (and out of reach) for a cheap digest.
    """
    def driver(spec):
        return {"gate": spec.gate.name, "slew": spec.input_slew,
                "rising": spec.output_rising, "start": spec.input_start,
                "pin": spec.switching_pin}

    payload = {
        "nets": [{
            "name": net.name,
            "victim_root": net.victim_root,
            "receiver_node": net.victim_receiver_node,
            "driver": driver(net.victim_driver),
            "receiver": {"gate": net.receiver.gate.name,
                         "c_load": net.receiver.c_load,
                         "pin": net.receiver.input_pin},
            "aggressors": [{"name": a.name, "root": a.root,
                            "far_end": a.far_end,
                            "window": list(a.window) if a.window else None,
                            "driver": driver(a.driver)}
                           for a in net.aggressors],
        } for net in nets],
        "dt": analyzer.dt,
        "table_kwargs": {k: repr(v) for k, v in
                         sorted(analyzer.table_kwargs.items())},
        "analyze_kwargs": {k: repr(v) for k, v in
                           sorted(analyze_kwargs.items())},
    }
    if tier_labels is not None:
        # Only stamped when screening is active, so checkpoints from
        # pre-screening runs keep their hashes.  Labels shape which
        # nets have reports at all, so a different threshold/policy
        # must read as a different run.
        payload["tier_labels"] = dict(sorted(tier_labels.items()))
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


class _Breaker:
    """The ``max_failures`` circuit breaker.

    ``max_failures`` is an absolute count when >= 1 and a fraction of
    the net population when in (0, 1); ``None`` disables the breaker.
    The breaker trips when the failure tally *exceeds* the threshold.
    """

    def __init__(self, max_failures: int | float | None, total: int):
        self.total = total
        self.threshold: float | None = None
        if max_failures is not None:
            if max_failures < 0:
                raise ValueError(
                    f"max_failures must be >= 0, got {max_failures}")
            if 0 < max_failures < 1:
                self.threshold = max_failures * total
            else:
                self.threshold = float(max_failures)
        self.failures = 0

    def record(self, failure: NetFailure) -> None:
        self.failures += 1
        if self.threshold is not None and self.failures > self.threshold:
            metrics().counter("exec.breaker_tripped").inc()
            raise TooManyFailures(
                f"aborting after {self.failures} of {self.total} nets "
                f"failed (max_failures={self.threshold:g}); last: "
                f"{failure.net_name}: {failure.error}")


# ----------------------------------------------------------------------
# The map
# ----------------------------------------------------------------------
def analyze_nets(nets, *, jobs: int = 1,
                 analyzer: DelayNoiseAnalyzer | None = None,
                 timeout: float | None = None,
                 warm: bool = True,
                 retries: int = 2,
                 retry_backoff: float = 0.1,
                 max_failures: int | float | None = None,
                 checkpoint=None,
                 resume: bool = False,
                 force_resume: bool = False,
                 on_heartbeat=None,
                 init_timeout: float | None = None,
                 rss_budget_bytes: int | None = None,
                 watchdog_factor: float | None = WATCHDOG_FACTOR,
                 tier_labels: dict[str, int] | None = None,
                 **analyze_kwargs) -> ExecResult:
    """Analyze every net, optionally across ``jobs`` worker processes.

    Parameters
    ----------
    nets:
        The coupled nets to analyze (any iterable; order is preserved in
        the result).  Net names must be unique — duplicates would make
        per-name lookups, checkpoints and resume ambiguous.
    jobs:
        Worker processes.  1 (the default) runs serially in-process with
        no subprocess overhead.
    analyzer:
        The parent analyzer whose characterization caches seed the
        workers (created fresh if omitted).  Its caches are extended by
        the warm-up, so it stays hot for follow-up work.
    timeout:
        Optional per-net wall-clock limit in seconds; an overrunning net
        becomes a :class:`NetFailure` with a :class:`NetTimeout` error.
    warm:
        Pre-build all needed characterization tables in the parent
        before mapping (recommended; disable only when the caller
        guarantees the analyzer is already hot).
    retries:
        Isolated re-attempts granted to a net suspected of crashing its
        worker before it is recorded as a ``WorkerCrash`` failure.
    retry_backoff:
        Base of the exponential backoff between crash re-attempts
        (seconds; attempt *k* sleeps ``retry_backoff * 2**(k-1)``).
    max_failures:
        Circuit breaker: abort with :class:`TooManyFailures` when the
        failure tally exceeds this count (>= 1) or fraction of the
        population ((0, 1)).  ``None`` (default) disables the breaker.
    checkpoint:
        Path of an atomic JSONL checkpoint streaming every completed
        net (report or failure) as it finishes.
    resume:
        With ``checkpoint``, load the nets already recorded there and
        analyze only the remainder; the combined result is bit-identical
        to an uninterrupted run.  The checkpoint's header ``run_hash``
        must match this run's identity (nets, specs, analyzer config) —
        a mismatch raises :class:`~repro.resilience.StaleCheckpoint`.
    force_resume:
        Resume even when the checkpoint's ``run_hash`` does not match —
        for operators who know the config change is benign.  The mixed
        provenance is logged and counted (``exec.force_resumed``).
    init_timeout:
        Coarse deadline (seconds) on each worker's warm-start restore;
        an overrunning initializer turns every net handed to that worker
        into a structured ``WorkerInitTimeout`` failure instead of a
        silent stall.  Defaults to ``10 x timeout`` when a per-net
        ``timeout`` is set, else unbounded.
    rss_budget_bytes:
        Per-worker resident-set budget.  A worker whose heartbeat
        exceeds it is terminated (pool recycled); if its net also
        failed, the net is retried once in a fresh worker with the
        sparse MNA backend forced.
    watchdog_factor:
        Hang deadline as a multiple of the completed-net p95 wall time
        (parent-side, ``jobs>1`` only) — an in-flight net past the
        clamped deadline is recorded as a ``WorkerHang`` failure and
        its worker killed, with the other in-flight nets resubmitted.
        Before enough samples exist the deadline falls back to the
        static ``timeout``.  ``None`` disables hang detection.
    on_heartbeat:
        Optional callable invoked with a :class:`repro.obs.Heartbeat`
        as each net completes (in completion order, not input order) —
        the hook live progress rendering hangs off
        (:class:`repro.obs.ProgressTracker.record`).
    tier_labels:
        Screening-tier label per net name (0/1/2; missing names default
        to 2), as produced by :func:`repro.core.screening.triage`.
        Nets labelled below 2 were *pruned* by the tiered screen: they
        are never dispatched and never warmed — the whole point of the
        screen is that workers skip the non-linear characterization
        state for them — and finish with neither report nor failure.
        Each still emits one tier-tagged heartbeat so live progress and
        the manifest count it.  When set, the labels join the
        checkpoint run-identity hash (a different threshold or policy
        produces a different prune set, so its checkpoints must not
        cross-resume).
    **analyze_kwargs:
        Forwarded to :meth:`DelayNoiseAnalyzer.analyze` (``alignment``,
        ``use_rtr``, ...).
    """
    nets = list(nets)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    names = [net.name for net in nets]
    if len(set(names)) != len(names):
        seen: set[str] = set()
        dupes = sorted({n for n in names if n in seen or seen.add(n)})
        raise ValueError(
            f"net names must be unique (duplicated: {', '.join(dupes)})")
    if tier_labels is not None:
        unknown = sorted(set(tier_labels) - set(names))
        if unknown:
            raise ValueError(
                f"tier_labels name unknown nets: {', '.join(unknown)}")
        bad = sorted({v for v in tier_labels.values()
                      if v not in (0, 1, 2)})
        if bad:
            raise ValueError(f"tier labels must be 0, 1 or 2, got {bad}")
    if analyzer is None:
        analyzer = DelayNoiseAnalyzer()

    stats = ExecStats(jobs=jobs, nets=len(nets))
    reports: list[NoiseReport | None] = [None] * len(nets)
    failures_at: list[NetFailure | None] = [None] * len(nets)
    breaker = _Breaker(max_failures, len(nets))

    # Resume: answer already-checkpointed nets from disk.
    writer: CheckpointWriter | None = None
    todo = list(range(len(nets)))
    run_hash = _run_identity(nets, analyzer, analyze_kwargs, tier_labels)
    if checkpoint is not None:
        if resume:
            header = load_checkpoint_header(checkpoint)
            stored_hash = None if header is None else \
                header.get("run_hash")
            if stored_hash is not None and stored_hash != run_hash:
                if not force_resume:
                    raise StaleCheckpoint(
                        f"checkpoint {checkpoint} was written by a run "
                        f"with a different configuration (run_hash "
                        f"{stored_hash[:12]}… vs {run_hash[:12]}…); "
                        "its reports would not be bit-identical to "
                        "this run's.  Re-run without resume, or pass "
                        "force_resume=True (--force-resume) to mix "
                        "them anyway.")
                metrics().counter("exec.force_resumed").inc()
                log.warning(
                    "resuming from %s DESPITE a run_hash mismatch "
                    "(%s… vs %s…): resumed reports were computed "
                    "under a different configuration", checkpoint,
                    stored_hash[:12], run_hash[:12])
            recorded = load_checkpoint(checkpoint)
            remaining = []
            for i, name in enumerate(names):
                record = recorded.get(name)
                if record is None:
                    remaining.append(i)
                    continue
                reports[i], failures_at[i] = \
                    _decode_checkpoint_record(record)
                stats.resumed += 1
            todo = remaining
            metrics().counter("exec.resumed").inc(stats.resumed)
            log.debug("resumed %d net(s) from %s; %d remaining",
                      stats.resumed, checkpoint, len(todo))
        writer = CheckpointWriter(checkpoint, resume=resume,
                                  header={"run_hash": run_hash})

    # Tiered screening: pruned nets leave the todo list here — before
    # warm-up, before dispatch — so neither the parent nor any worker
    # spends a single non-linear simulation on them.  Applied after
    # resume so force-resumed reports (if any) win over a prune.
    if tier_labels is not None:
        pruned = [i for i in todo if tier_labels.get(names[i], 2) < 2]
        if pruned:
            pruned_set = set(pruned)
            todo = [i for i in todo if i not in pruned_set]
            stats.pruned = len(pruned)
            for i in pruned:
                label = tier_labels[names[i]]
                stats.pruned_by_tier[label] = \
                    stats.pruned_by_tier.get(label, 0) + 1
                if on_heartbeat is not None:
                    on_heartbeat(Heartbeat(net=names[i], seconds=0.0,
                                           rss_bytes=0, pid=os.getpid(),
                                           tier=label))
            metrics().counter("exec.pruned").inc(len(pruned))
            log.debug("tiered screen pruned %d of %d nets before "
                      "dispatch", len(pruned), len(nets))

    def record_outcome(i: int, report: NoiseReport | None,
                       failure: NetFailure | None) -> None:
        reports[i], failures_at[i] = report, failure
        if writer is not None:
            if failure is None:
                writer.append(names[i], "report",
                              noise_report_to_dict(report))
            else:
                writer.append(names[i], "failure", failure.to_dict())
        if failure is not None:
            breaker.record(failure)

    tracer = current_tracer()
    todo_nets = [nets[i] for i in todo]
    if warm and todo_nets:
        t_warm = time.perf_counter()
        with tracer.span("exec.warm", nets=len(todo_nets)):
            warm_analyzer(analyzer, todo_nets,
                          alignment=analyze_kwargs.get("alignment",
                                                       "table"))
        stats.warm_time = time.perf_counter() - t_warm
        log.debug("warmed characterization caches in %.2f s",
                  stats.warm_time)

    # Prime the resource baseline after warm-up so per-net CPU deltas
    # cover analysis only; sampled again at every net boundary below.
    sample_resources()
    t_start = time.perf_counter()
    with tracer.span("exec.analyze_nets", jobs=jobs, nets=len(nets)):
        if jobs == 1 or len(todo) <= 1:
            hits0, misses0 = _cache_counters(analyzer)
            for i in todo:
                t_net = time.perf_counter()
                report, failure = _analyze_one(
                    analyzer, nets[i], timeout, analyze_kwargs)
                seconds = time.perf_counter() - t_net
                record_outcome(i, report, failure)
                sample_resources()
                rss = peak_rss_bytes()
                stats.peak_rss_bytes = max(stats.peak_rss_bytes, rss)
                if on_heartbeat is not None:
                    on_heartbeat(Heartbeat(
                        net=names[i], seconds=seconds, rss_bytes=rss,
                        pid=os.getpid(), failed=failure is not None))
            hits1, misses1 = _cache_counters(analyzer)
            stats.cache_hits = hits1 - hits0
            stats.cache_misses = misses1 - misses0
        else:
            if init_timeout is None and timeout:
                init_timeout = 10.0 * timeout
            # The watchdog's duration samples live in a private tracker
            # (the caller's on_heartbeat tracker, if any, is theirs).
            watch_tracker = ProgressTracker(total=len(todo))
            deadline = (AdaptiveDeadline(watch_tracker,
                                         static_timeout=timeout,
                                         factor=watchdog_factor)
                        if watchdog_factor else None)
            _run_pool(nets, todo, jobs, analyzer, timeout, retries,
                      retry_backoff, analyze_kwargs, tracer, stats,
                      record_outcome, on_heartbeat,
                      init_timeout=init_timeout,
                      rss_budget_bytes=rss_budget_bytes,
                      deadline=deadline, watch_tracker=watch_tracker)
            # One parent-side sample so the merged registry also covers
            # this process (workers folded theirs per net above).
            sample_resources()
            stats.peak_rss_bytes = max(stats.peak_rss_bytes,
                                       peak_rss_bytes())

    stats.wall_time = time.perf_counter() - t_start
    failures = [f for f in failures_at if f is not None]
    stats.failures = len(failures)
    for failure in failures:
        name = failure.error_type or failure.error.split(":", 1)[0]
        stats.failures_by_type[name] = \
            stats.failures_by_type.get(name, 0) + 1
    stats.degraded = sum(1 for r in reports
                         if r is not None and r.quality != "exact")
    log.debug("analyzed %d nets in %.2f s (%d failed, %d degraded, "
              "%d resumed, jobs=%d)", stats.nets, stats.wall_time,
              stats.failures, stats.degraded, stats.resumed, jobs)
    return ExecResult(reports=reports, failures=failures, stats=stats)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's workers outright, then shut it down.

    ``shutdown(cancel_futures=True)`` alone never interrupts a task
    already *running* — a hung or bloated worker would keep burning
    CPU/RSS forever.  Termination goes through the executor's process
    table (private API, so failure is tolerated: the shutdown below
    still detaches us from the pool either way).
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    # shutdown(wait=False) nulls the executor's private attributes, so
    # grab the result queue now: its parent-side write end must be
    # closed once the workers are dead (see below).
    result_queue = getattr(pool, "_result_queue", None)
    for process in processes:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead worker
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    # Reap deterministically, escalating to SIGKILL: a worker that
    # shrugs off SIGTERM (stuck in a C kernel with the signal pending)
    # would leave the executor's management thread joining it forever
    # at interpreter exit.
    for process in processes:
        try:
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        except Exception:  # pragma: no cover - already-reaped worker
            pass
    # A worker killed mid-result-write leaves a truncated message in
    # the result pipe.  The executor's management thread then blocks in
    # ``recv()`` waiting for bytes that will never come — the parent's
    # own copy of the write end keeps the pipe from ever reporting EOF
    # — and interpreter exit joins that (non-daemon) thread forever.
    # With every worker reaped, closing our write end turns that stuck
    # read into an immediate EOFError, which the management thread
    # handles as "pool broken" and winds down.
    try:
        result_queue._writer.close()
    except Exception:  # pragma: no cover - stdlib internals drift
        pass


def _run_pool(nets, todo, jobs, analyzer, timeout, retries,
              retry_backoff, analyze_kwargs, tracer, stats,
              record_outcome, on_heartbeat=None, *,
              init_timeout=None, rss_budget_bytes=None,
              deadline: AdaptiveDeadline | None = None,
              watch_tracker: ProgressTracker | None = None) -> None:
    """The ``jobs>1`` path: per-net futures over a rebuildable pool.

    Submission is windowed to the worker count, so when the pool breaks
    the suspect set (submitted-but-unresolved nets) is at most ``jobs``
    nets.  Suspects are then re-probed one at a time in a fresh pool —
    an isolated crash is unambiguously the probed net's — with
    ``retries`` re-attempts and exponential backoff before the net is
    recorded as a ``WorkerCrash``.  Everything else resumes in
    parallel.

    The wait is a timed poll (``_WATCHDOG_POLL_S``), which is what the
    heartbeat watchdog hangs off: each wakeup compares every in-flight
    net's age against the adaptive ``deadline`` (p95-derived, clamped;
    see :class:`repro.obs.progress.AdaptiveDeadline`) and every
    completed heartbeat against ``rss_budget_bytes``.  Either trips a
    pool recycle: stuck/bloated workers are terminated, hung nets are
    recorded as ``WorkerHang`` failures, and the *innocent* in-flight
    nets are resubmitted — completed nets are already safe in the
    checkpoint stream, so nothing finished is lost to the kill.
    """
    snapshot = build_snapshot(analyzer)
    workers = min(jobs, len(todo))
    initargs = (snapshot, analyze_kwargs, timeout, tracer.enabled,
                active_plan(), init_timeout)
    crash_counter = metrics().counter("exec.worker_crashes")
    retry_counter = metrics().counter("exec.retries")
    hang_counter = metrics().counter("exec.watchdog_kills")
    rss_counter = metrics().counter("exec.rss_flagged")
    sparse_counter = metrics().counter("exec.sparse_retries")
    # Per-index telemetry buffers, merged in input order at the end so
    # jobs=N traces keep the serial topology regardless of completion
    # (and crash/retry) order.
    telemetry: dict[int, tuple] = {}
    crash_attempts: dict[int, int] = {}
    force_sparse: set[int] = set()

    def new_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=workers,
                                   initializer=_worker_init,
                                   initargs=initargs)

    def task_for(i: int):
        return _worker_run_sparse if i in force_sparse else _worker_run

    def accept(i: int, outcome) -> None:
        report, failure, hits, misses, metric_payload, spans, \
            heartbeat = outcome
        telemetry[i] = (hits, misses, metric_payload, spans)
        record_outcome(i, report, failure)
        stats.peak_rss_bytes = max(stats.peak_rss_bytes,
                                   heartbeat.rss_bytes)
        if watch_tracker is not None:
            watch_tracker.record(heartbeat)
        if on_heartbeat is not None:
            on_heartbeat(heartbeat)

    def failure_heartbeat(i: int) -> None:
        # Nets that die without a worker result (crashes, transport
        # failures) still tick the progress line.
        if on_heartbeat is not None:
            on_heartbeat(Heartbeat(net=nets[i].name, seconds=0.0,
                                   rss_bytes=0, failed=True))

    pool = new_pool()
    pending = deque(todo)
    inflight: dict = {}  # future -> (net index, submit monotonic time)
    try:
        while pending or inflight:
            while pending and len(inflight) < workers:
                i = pending.popleft()
                inflight[pool.submit(task_for(i), nets[i])] = \
                    (i, time.monotonic())
            done, _ = wait(set(inflight), timeout=_WATCHDOG_POLL_S,
                           return_when=FIRST_COMPLETED)
            suspects: list[int] = []
            requeue: list[int] = []
            recycle = False
            for future in done:
                i, _t0 = inflight.pop(future)
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    suspects.append(i)
                    continue
                except TooManyFailures:
                    raise
                except Exception as exc:
                    # Result-transport failure (e.g. unpicklable state):
                    # per-net, not systemic — record and move on.
                    record_outcome(i, None, NetFailure(
                        net_name=nets[i].name,
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=traceback.format_exc(),
                        error_type=type(exc).__name__))
                    failure_heartbeat(i)
                    continue
                heartbeat = outcome[6]
                if (rss_budget_bytes is not None
                        and heartbeat.rss_bytes > rss_budget_bytes):
                    stats.rss_flagged += 1
                    rss_counter.inc()
                    recycle = True
                    log.warning(
                        "worker %d finished %s at %.0f MB RSS (budget "
                        "%.0f MB); recycling the pool", heartbeat.pid,
                        nets[i].name, heartbeat.rss_bytes / 1e6,
                        rss_budget_bytes / 1e6)
                    if outcome[1] is not None and i not in force_sparse:
                        # The net failed *and* bloated the worker —
                        # likely dense fill; one retry, sparse forced.
                        force_sparse.add(i)
                        stats.sparse_retries += 1
                        sparse_counter.inc()
                        requeue.append(i)
                        continue
                accept(i, outcome)
            # Heartbeat watchdog: any in-flight net past the adaptive
            # deadline counts as hung — record it, kill the pool (the
            # only way to stop a spinning worker), resubmit the rest.
            if deadline is not None and inflight:
                limit = deadline.seconds()
                if limit is not None:
                    now = time.monotonic()
                    overdue = [(future, i, now - t0)
                               for future, (i, t0) in inflight.items()
                               if now - t0 > limit]
                    for future, i, age in overdue:
                        del inflight[future]
                        stats.watchdog_kills += 1
                        hang_counter.inc()
                        recycle = True
                        log.warning(
                            "net %s hung: no result after %.1f s "
                            "(deadline %.1f s); killing its worker",
                            nets[i].name, age, limit)
                        record_outcome(i, None, NetFailure(
                            net_name=nets[i].name,
                            error=(f"WorkerHang: no result after "
                                   f"{age:.1f} s (watchdog deadline "
                                   f"{limit:.1f} s)"),
                            traceback="", error_type="WorkerHang"))
                        failure_heartbeat(i)
            if suspects:
                # The pool is broken; every in-flight future is doomed
                # with it.  Anything submitted-but-unresolved is a
                # suspect (the window bounds this set to <= workers).
                stats.worker_crashes += 1
                crash_counter.inc()
                suspects.extend(i for i, _t0 in inflight.values())
                inflight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = new_pool()
                log.warning("worker pool broke; probing %d suspect "
                            "net(s) in isolation", len(suspects))
                for i in sorted(suspects):
                    pool = _probe(pool, new_pool, nets, i, task_for,
                                  accept, record_outcome,
                                  crash_attempts, retries,
                                  retry_backoff, stats, crash_counter,
                                  retry_counter, failure_heartbeat)
            elif recycle:
                # Survivors (in flight in healthy workers) go back to
                # the front of the queue; their partial work is lost
                # but their checkpointed peers are not.
                requeue.extend(i for i, _t0 in inflight.values())
                inflight.clear()
                _kill_pool(pool)
                pool = new_pool()
            for i in sorted(requeue, reverse=True):
                pending.appendleft(i)
    finally:
        _kill_pool(pool)

    # Merge telemetry in input order, independent of completion order.
    for i in todo:
        if i in telemetry:
            hits, misses, metric_payload, spans = telemetry[i]
            stats.cache_hits += hits
            stats.cache_misses += misses
            metrics().merge_snapshot(metric_payload)
            tracer.absorb(spans)


def _probe(pool, new_pool, nets, i, task_for, accept, record_outcome,
           crash_attempts, retries, retry_backoff, stats,
           crash_counter, retry_counter,
           failure_heartbeat) -> ProcessPoolExecutor:
    """Run one suspect net alone in the pool, attributing crashes to it.

    With a single in-flight net, a ``BrokenProcessPool`` is
    unambiguously this net's doing: count the attempt, rebuild the
    pool, back off exponentially and retry until ``retries`` isolated
    attempts are exhausted, at which point the net is recorded as a
    ``WorkerCrash`` :class:`NetFailure`.  Returns the (possibly
    rebuilt) pool for the caller to keep using.
    """
    while True:
        future = pool.submit(task_for(i), nets[i])
        try:
            accept(i, future.result())
            return pool
        except BrokenProcessPool:
            stats.worker_crashes += 1
            crash_counter.inc()
            pool.shutdown(wait=False, cancel_futures=True)
            pool = new_pool()
            attempts = crash_attempts.get(i, 0) + 1
            crash_attempts[i] = attempts
            if attempts > retries:
                log.warning("net %s crashed its worker %d time(s); "
                            "recording WorkerCrash", nets[i].name,
                            attempts)
                record_outcome(i, None, NetFailure(
                    net_name=nets[i].name,
                    error=f"WorkerCrash: worker process died while "
                          f"analyzing net {nets[i].name} "
                          f"({attempts} isolated attempts)",
                    traceback="",
                    error_type="WorkerCrash"))
                failure_heartbeat(i)
                return pool
            stats.retries += 1
            retry_counter.inc()
            delay = retry_backoff * 2 ** (attempts - 1)
            log.warning("net %s crashed its worker (attempt %d/%d); "
                        "retrying in %.2f s", nets[i].name, attempts,
                        retries, delay)
            time.sleep(delay)
        except TooManyFailures:
            raise
        except Exception as exc:
            record_outcome(i, None, NetFailure(
                net_name=nets[i].name,
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback.format_exc(),
                error_type=type(exc).__name__))
            failure_heartbeat(i)
            return pool
