"""Parallel per-net analysis: a process-pool map over coupled nets.

The paper's flow is embarrassingly parallel across nets — every
:meth:`DelayNoiseAnalyzer.analyze` call is independent once the shared
characterization tables exist.  :func:`analyze_nets` exploits that:

* ``jobs=1`` runs serially in-process — no subprocess, no pickling, the
  exact code path a plain loop would take;
* ``jobs>1`` fans the nets out over a :class:`ProcessPoolExecutor`
  whose workers are *warm-started* from a characterization snapshot
  (see :mod:`repro.exec.snapshot`), so no worker ever re-runs a
  non-linear characterization simulation.

Results come back in input order regardless of completion order, and
serial/parallel runs produce bit-identical reports.  A net that fails
(or exceeds the optional per-net wall-clock ``timeout``) becomes a
structured :class:`NetFailure` record instead of killing the run, and
:class:`ExecStats` reports throughput, cache traffic and wall time.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.analysis import DelayNoiseAnalyzer, NoiseReport
from repro.core.net import CoupledNet
from repro.exec.snapshot import build_snapshot, restore_analyzer, warm_analyzer
from repro.obs import Tracer, current_tracer, get_logger, metrics, set_tracer

__all__ = ["NetFailure", "NetTimeout", "ExecStats", "ExecResult",
           "analyze_nets"]

log = get_logger("exec.pool")


class NetTimeout(Exception):
    """One net's analysis exceeded the per-net wall-clock budget."""


@dataclass(frozen=True)
class NetFailure:
    """One net's analysis failure, captured without killing the run."""

    net_name: str
    error: str        #: ``"ExceptionType: message"``
    traceback: str    #: full formatted traceback from the failing process
    error_type: str = ""  #: exception class name (``"NetTimeout"``, ...)


@dataclass
class ExecStats:
    """Throughput and cache accounting for one :func:`analyze_nets` run.

    ``cache_hits``/``cache_misses`` aggregate Thevenin *and* alignment
    table traffic across all processes.  A warm-started worker should
    show zero misses; a non-zero count means characterization ran inside
    a worker — visible here instead of silently slow.
    """

    jobs: int
    nets: int = 0
    failures: int = 0
    wall_time: float = 0.0
    warm_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Exception class name -> count, so a summary can tell timeouts
    #: (``NetTimeout``) from solver failures (``ConvergenceError``) at
    #: a glance.
    failures_by_type: dict[str, int] = field(default_factory=dict)

    @property
    def nets_per_second(self) -> float:
        if self.wall_time <= 0.0:
            return 0.0
        return self.nets / self.wall_time


@dataclass
class ExecResult:
    """Outcome of :func:`analyze_nets`, in input-net order.

    ``reports[i]`` corresponds to ``nets[i]``; it is ``None`` exactly
    when that net produced a :class:`NetFailure` (failures are also
    listed in input order).
    """

    reports: list[NoiseReport | None]
    failures: list[NetFailure] = field(default_factory=list)
    stats: ExecStats = field(default_factory=lambda: ExecStats(jobs=1))

    @property
    def ok(self) -> bool:
        return not self.failures

    def report(self, net_name: str) -> NoiseReport:
        """The report for one net, by name."""
        for report in self.reports:
            if report is not None and report.net_name == net_name:
                return report
        for failure in self.failures:
            if failure.net_name == net_name:
                raise KeyError(
                    f"net {net_name!r} failed: {failure.error}")
        raise KeyError(f"no net named {net_name!r} in this run")

    def raise_on_failure(self) -> None:
        """Raise ``RuntimeError`` summarizing failures, if there are any."""
        if not self.failures:
            return
        lines = [f"  {f.net_name}: {f.error}" for f in self.failures]
        raise RuntimeError(
            f"{len(self.failures)} of {self.stats.nets} nets failed:\n"
            + "\n".join(lines))


# ----------------------------------------------------------------------
# Per-net execution (shared by the serial path and the workers)
# ----------------------------------------------------------------------
@contextmanager
def _time_limit(seconds: float | None):
    """Raise :class:`NetTimeout` if the body runs longer than ``seconds``.

    Implemented with ``SIGALRM``/``setitimer``, which only works in a
    main thread (process-pool workers and the serial path both qualify);
    elsewhere the limit is skipped rather than mis-armed.
    """
    if not seconds or seconds <= 0 or \
            threading.current_thread() is not threading.main_thread():
        yield
        return

    def _on_alarm(signum, frame):
        raise NetTimeout(f"net analysis exceeded {seconds:g} s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _cache_counters(analyzer: DelayNoiseAnalyzer) -> tuple[int, int]:
    return (analyzer.cache.hits + analyzer.table_hits,
            analyzer.cache.misses + analyzer.table_misses)


def _analyze_one(analyzer: DelayNoiseAnalyzer, net: CoupledNet,
                 timeout: float | None, analyze_kwargs: dict
                 ) -> tuple[NoiseReport | None, NetFailure | None]:
    try:
        with _time_limit(timeout):
            return analyzer.analyze(net, **analyze_kwargs), None
    except Exception as exc:
        log.debug("net %s failed: %s: %s", net.name,
                  type(exc).__name__, exc)
        return None, NetFailure(
            net_name=net.name,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            error_type=type(exc).__name__)


# ----------------------------------------------------------------------
# Worker protocol
# ----------------------------------------------------------------------
# Populated once per worker process by the pool initializer; workers then
# analyze any number of nets against the same warm analyzer.
_WORKER_STATE: dict = {}


def _worker_init(snapshot: dict, analyze_kwargs: dict,
                 timeout: float | None, trace: bool) -> None:
    # Workers may be forked, inheriting the parent's tracer buffer and
    # metric values — start both from scratch so per-net drains report
    # only this worker's activity (the parent merges them back).
    set_tracer(Tracer(enabled=trace))
    _WORKER_STATE["analyzer"] = restore_analyzer(snapshot)
    metrics().reset()
    _WORKER_STATE["analyze_kwargs"] = analyze_kwargs
    _WORKER_STATE["timeout"] = timeout


def _worker_run(net: CoupledNet):
    """Analyze one net and ship its telemetry back with the result.

    Alongside the report/failure the worker returns its cache-counter
    deltas, a drained metrics snapshot and its drained span buffer, so
    the parent can merge a ``jobs=N`` run's telemetry into the same
    registry/trace a serial run would have produced.
    """
    analyzer = _WORKER_STATE["analyzer"]
    hits0, misses0 = _cache_counters(analyzer)
    report, failure = _analyze_one(
        analyzer, net, _WORKER_STATE["timeout"],
        _WORKER_STATE["analyze_kwargs"])
    hits1, misses1 = _cache_counters(analyzer)
    return (report, failure, hits1 - hits0, misses1 - misses0,
            metrics().drain(), current_tracer().drain())


# ----------------------------------------------------------------------
# The map
# ----------------------------------------------------------------------
def analyze_nets(nets, *, jobs: int = 1,
                 analyzer: DelayNoiseAnalyzer | None = None,
                 timeout: float | None = None,
                 warm: bool = True,
                 **analyze_kwargs) -> ExecResult:
    """Analyze every net, optionally across ``jobs`` worker processes.

    Parameters
    ----------
    nets:
        The coupled nets to analyze (any iterable; order is preserved in
        the result).
    jobs:
        Worker processes.  1 (the default) runs serially in-process with
        no subprocess overhead.
    analyzer:
        The parent analyzer whose characterization caches seed the
        workers (created fresh if omitted).  Its caches are extended by
        the warm-up, so it stays hot for follow-up work.
    timeout:
        Optional per-net wall-clock limit in seconds; an overrunning net
        becomes a :class:`NetFailure` with a :class:`NetTimeout` error.
    warm:
        Pre-build all needed characterization tables in the parent
        before mapping (recommended; disable only when the caller
        guarantees the analyzer is already hot).
    **analyze_kwargs:
        Forwarded to :meth:`DelayNoiseAnalyzer.analyze` (``alignment``,
        ``use_rtr``, ...).
    """
    nets = list(nets)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if analyzer is None:
        analyzer = DelayNoiseAnalyzer()

    tracer = current_tracer()
    stats = ExecStats(jobs=jobs, nets=len(nets))
    if warm and nets:
        t_warm = time.perf_counter()
        with tracer.span("exec.warm", nets=len(nets)):
            warm_analyzer(analyzer, nets,
                          alignment=analyze_kwargs.get("alignment",
                                                       "table"))
        stats.warm_time = time.perf_counter() - t_warm
        log.debug("warmed characterization caches in %.2f s",
                  stats.warm_time)

    reports: list[NoiseReport | None] = [None] * len(nets)
    failures: list[NetFailure] = []
    t_start = time.perf_counter()

    with tracer.span("exec.analyze_nets", jobs=jobs, nets=len(nets)):
        if jobs == 1 or len(nets) <= 1:
            hits0, misses0 = _cache_counters(analyzer)
            for i, net in enumerate(nets):
                reports[i], failure = _analyze_one(
                    analyzer, net, timeout, analyze_kwargs)
                if failure is not None:
                    failures.append(failure)
            hits1, misses1 = _cache_counters(analyzer)
            stats.cache_hits = hits1 - hits0
            stats.cache_misses = misses1 - misses0
        else:
            snapshot = build_snapshot(analyzer)
            workers = min(jobs, len(nets))
            with ProcessPoolExecutor(
                    max_workers=workers, initializer=_worker_init,
                    initargs=(snapshot, analyze_kwargs, timeout,
                              tracer.enabled)) as pool:
                # Executor.map yields in submission order —
                # deterministic result ordering independent of worker
                # scheduling, and the trace/metrics merge below happens
                # in input-net order for the same reason.
                outcomes = pool.map(_worker_run, nets)
                for i, (report, failure, hits, misses, metric_payload,
                        spans) in enumerate(outcomes):
                    reports[i] = report
                    if failure is not None:
                        failures.append(failure)
                    stats.cache_hits += hits
                    stats.cache_misses += misses
                    metrics().merge_snapshot(metric_payload)
                    tracer.absorb(spans)

    stats.wall_time = time.perf_counter() - t_start
    stats.failures = len(failures)
    for failure in failures:
        name = failure.error_type or failure.error.split(":", 1)[0]
        stats.failures_by_type[name] = \
            stats.failures_by_type.get(name, 0) + 1
    log.debug("analyzed %d nets in %.2f s (%d failed, jobs=%d)",
              stats.nets, stats.wall_time, stats.failures, jobs)
    return ExecResult(reports=reports, failures=failures, stats=stats)
