"""Characterization snapshots — the worker warm-start protocol.

Characterization (non-linear Thevenin fitting, 8-point alignment
sweeps) is *per cell*, and it is the only expensive state a
:class:`~repro.core.analysis.DelayNoiseAnalyzer` accumulates.  The
process-pool workers of :mod:`repro.exec.pool` must never re-run a
characterization simulation, so the parent:

1. **warms** its analyzer — pre-builds every Thevenin and alignment
   table the work list will need (:func:`warm_analyzer`);
2. **snapshots** the caches into a plain-dict payload using the same
   dict codecs :mod:`repro.storage` uses for the on-disk chardb
   (:func:`build_snapshot`);
3. ships the snapshot to each worker once, via the pool initializer,
   where :func:`restore_analyzer` rehydrates a fully warm analyzer.

Because the codecs round-trip floats exactly and gates are rebuilt
deterministically by cell name, a rehydrated analyzer produces
bit-identical reports to the parent's — parallel and serial runs agree
to the last bit.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.analysis import DelayNoiseAnalyzer
from repro.core.net import CoupledNet
from repro.obs import get_logger, span
from repro.storage import characterization_payload, install_characterization
from repro.units import PS

__all__ = ["warm_analyzer", "build_snapshot", "restore_analyzer"]

log = get_logger("exec.snapshot")


def warm_analyzer(analyzer: DelayNoiseAnalyzer,
                  nets: Iterable[CoupledNet], *,
                  alignment: str = "table") -> None:
    """Pre-build every characterization table ``nets`` will need.

    Thevenin tables are built for each victim and aggressor driver;
    alignment tables for each (receiver cell, victim direction) when the
    table alignment method is in use.  Tables already cached are free
    (cache hits), so warming an already-hot analyzer costs nothing.
    """
    for net in nets:
        analyzer.cache.table_for(net.victim_driver)
        for agg in net.aggressors:
            analyzer.cache.table_for(agg.driver)
        if alignment == "table":
            analyzer.alignment_table_for(net.receiver.gate,
                                         net.victim_rising)


def build_snapshot(analyzer: DelayNoiseAnalyzer) -> dict[str, Any]:
    """Capture an analyzer's characterization state as a plain dict.

    The payload is the :mod:`repro.storage` chardb payload plus the
    analyzer's construction parameters, so a worker reconstructs an
    equivalent analyzer without touching the parent's objects.
    """
    with span("exec.snapshot.build"):
        payload = characterization_payload(analyzer)
        payload["analyzer"] = {
            "dt": analyzer.dt,
            "table_kwargs": dict(analyzer.table_kwargs),
        }
    log.debug("snapshot: %d thevenin tables, %d alignment tables",
              len(analyzer.cache), len(analyzer.alignment_tables()))
    return payload


def restore_analyzer(snapshot: dict[str, Any]) -> DelayNoiseAnalyzer:
    """Rehydrate a fully warm analyzer from :func:`build_snapshot`."""
    with span("exec.snapshot.restore"):
        params = snapshot.get("analyzer", {})
        analyzer = DelayNoiseAnalyzer(
            dt=params.get("dt", 1.0 * PS),
            table_kwargs=params.get("table_kwargs"))
        install_characterization(snapshot, analyzer)
    return analyzer
