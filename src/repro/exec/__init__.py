"""Parallel net-analysis engine.

The delay-noise flow is independent per net once the per-cell
characterization tables exist.  This package turns that into block-scale
throughput:

* :mod:`repro.exec.snapshot` — the worker warm-start protocol: the
  parent pre-builds all Thevenin/alignment tables, snapshots them with
  the :mod:`repro.storage` dict codecs, and workers rehydrate a fully
  warm :class:`~repro.core.analysis.DelayNoiseAnalyzer` so no worker
  ever re-runs a non-linear characterization simulation.
* :mod:`repro.exec.pool` — :func:`analyze_nets`, a deterministic
  process-pool map over coupled nets with a serial ``jobs=1`` fallback,
  structured per-net failure capture, an optional per-net timeout,
  crash-safe worker recovery with bounded retries, a ``max_failures``
  circuit breaker, JSONL checkpoint/resume, and throughput/cache
  statistics.

Consumers: ``BlockAnalyzer.run(jobs=N)`` re-analyzes nets in parallel
inside each fixed-point iteration, ``python -m repro screen --jobs N``
parallelizes population screening, and
:func:`repro.bench.runner.run_population` parallelizes benchmark
sweeps.
"""

from repro.exec.pool import (
    ExecResult,
    ExecStats,
    NetFailure,
    NetTimeout,
    TooManyFailures,
    analyze_nets,
)
from repro.exec.snapshot import build_snapshot, restore_analyzer, warm_analyzer

__all__ = [
    "ExecResult",
    "ExecStats",
    "NetFailure",
    "NetTimeout",
    "TooManyFailures",
    "analyze_nets",
    "build_snapshot",
    "restore_analyzer",
    "warm_analyzer",
]
