"""The ``repro`` logger hierarchy and CLI log configuration.

Every module logs through a child of the root ``repro`` logger
(``get_logger("core.analysis")`` → ``repro.core.analysis``), so one
level/handler configuration governs the whole library.  Library code
only ever *emits* records; handlers are installed exclusively by
entry points via :func:`configure_cli_logging` — imported as a library,
repro stays silent below WARNING (stdlib last-resort behaviour).

The CLI maps verbosity flags onto levels:

========  =========  =============================================
flags     level      what you see
========  =========  =============================================
``-q``    WARNING    problems only
(none)    INFO       results + one-line progress
``-v``    DEBUG      per-stage diagnostics (iterations, cache hits)
========  =========  =============================================
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure_cli_logging", "verbosity_level"]

ROOT_NAME = "repro"

#: Attribute marking handlers we installed (so reconfiguration swaps
#: them instead of stacking duplicates).
_MARK = "_repro_cli_handler"


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (the root if no name)."""
    return logging.getLogger(f"{ROOT_NAME}.{name}" if name else ROOT_NAME)


def verbosity_level(verbose: int = 0, quiet: int = 0) -> int:
    """Map ``-v``/``-q`` counts onto a ``logging`` level."""
    score = verbose - quiet
    if score <= -2:
        return logging.ERROR
    if score == -1:
        return logging.WARNING
    if score == 0:
        return logging.INFO
    return logging.DEBUG


def configure_cli_logging(verbose: int = 0, quiet: int = 0,
                          stream=None) -> logging.Logger:
    """Install a plain-message stdout handler on the ``repro`` logger.

    Called once per CLI invocation; a previously installed CLI handler
    is replaced (and the stream re-bound), never stacked.  DEBUG
    records get a ``logger-name: `` prefix so ``-v`` output is
    attributable; INFO records stay bare — they are the program's
    output.
    """
    root = get_logger()
    for handler in list(root.handlers):
        if getattr(handler, _MARK, False):
            root.removeHandler(handler)

    handler = logging.StreamHandler(stream or sys.stdout)
    handler.setFormatter(_CliFormatter())
    setattr(handler, _MARK, True)
    root.addHandler(handler)
    root.setLevel(verbosity_level(verbose, quiet))
    root.propagate = False
    return root


class _CliFormatter(logging.Formatter):
    """Bare messages for user output, attributed ones for diagnostics."""

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        if record.levelno == logging.INFO:
            return message
        if record.levelno == logging.DEBUG:
            return f"{record.name}: {message}"
        return f"{record.levelname.lower()}: {message}"
