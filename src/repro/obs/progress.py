"""Live progress from per-net heartbeats.

Workers (and the serial path) emit one :class:`Heartbeat` per completed
net — name, wall seconds, peak RSS, originating pid.  The parent feeds
them to a :class:`ProgressTracker`, which maintains done/total, the
run's throughput and ETA, the per-net duration distribution, and a
straggler flag: a net whose wall time exceeds
``STRAGGLER_FACTOR × p95`` of the nets before it (once enough samples
exist for a p95 to mean anything).

``repro screen --progress`` renders the tracker as a single
carriage-return progress line on stderr::

    [ 37/100]  2.81 nets/s  eta 22s  p95 512 ms  stragglers: net12

and the final tracker state lands in the run manifest, so the ledger
records the same distribution the operator watched.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

__all__ = ["Heartbeat", "ProgressTracker", "STRAGGLER_FACTOR",
           "MIN_STRAGGLER_SAMPLES"]

#: A net is flagged as a straggler when its duration exceeds this many
#: multiples of the p95 of the nets completed before it.
STRAGGLER_FACTOR = 3.0
#: Completed-net samples required before stragglers are judged (a p95
#: over fewer is noise).
MIN_STRAGGLER_SAMPLES = 5


@dataclass(frozen=True)
class Heartbeat:
    """One completed net's vitals, shipped from the analyzing process."""

    net: str           #: net name
    seconds: float     #: wall-clock analysis time
    rss_bytes: int     #: the analyzing process's peak RSS at completion
    pid: int = 0       #: originating process
    failed: bool = False

    def to_dict(self) -> dict:
        return {"net": self.net, "seconds": self.seconds,
                "rss_bytes": self.rss_bytes, "pid": self.pid,
                "failed": self.failed}


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


class ProgressTracker:
    """Accumulates heartbeats; optionally renders a live progress line.

    ``stream=None`` keeps the tracker silent (pure accounting for the
    manifest); the CLI passes ``sys.stderr`` under ``--progress``.
    Rendering is throttled to ``min_interval`` seconds, with a forced
    final render (plus newline) from :meth:`finish`.
    """

    def __init__(self, total: int, *, stream=None,
                 min_interval: float = 0.1):
        self.total = total
        self.stream = stream
        self.min_interval = min_interval
        self.done = 0
        self.failed = 0
        self.durations: list[float] = []
        self.stragglers: list[str] = []
        self._t_start = time.monotonic()
        self._last_render = 0.0

    # -- accounting ----------------------------------------------------
    def record(self, heartbeat: Heartbeat) -> None:
        """Fold one completed net in (the pool's ``on_heartbeat``)."""
        if (len(self.durations) >= MIN_STRAGGLER_SAMPLES
                and heartbeat.seconds
                > STRAGGLER_FACTOR * self.p95()):
            self.stragglers.append(heartbeat.net)
        self.durations.append(heartbeat.seconds)
        self.done += 1
        if heartbeat.failed:
            self.failed += 1
        self._maybe_render()

    def p95(self) -> float:
        return _percentile(sorted(self.durations), 0.95)

    def p50(self) -> float:
        return _percentile(sorted(self.durations), 0.50)

    def nets_per_second(self) -> float:
        elapsed = time.monotonic() - self._t_start
        return self.done / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self) -> float:
        rate = self.nets_per_second()
        if rate <= 0.0:
            return float("inf")
        return max(self.total - self.done, 0) / rate

    def snapshot(self) -> dict:
        """Final state for the run manifest."""
        return {
            "nets": self.done,
            "total": self.total,
            "failed": self.failed,
            "nets_per_second": self.nets_per_second(),
            "p50_s": self.p50(),
            "p95_s": self.p95(),
            "stragglers": list(self.stragglers),
        }

    # -- rendering -----------------------------------------------------
    def render_line(self) -> str:
        width = len(str(self.total))
        parts = [f"[{self.done:>{width}d}/{self.total}]",
                 f"{self.nets_per_second():.2f} nets/s"]
        eta = self.eta_seconds()
        if self.done < self.total and eta != float("inf"):
            parts.append(f"eta {eta:.0f}s")
        if self.durations:
            parts.append(f"p95 {self.p95() * 1e3:.0f} ms")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.stragglers:
            parts.append("stragglers: " + ",".join(self.stragglers[-3:]))
        return "  ".join(parts)

    def _maybe_render(self, force: bool = False) -> None:
        if self.stream is None:
            return
        now = time.monotonic()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self.stream.write("\r\x1b[2K" + self.render_line())
        self.stream.flush()

    def finish(self) -> None:
        """Force a final render and terminate the progress line."""
        if self.stream is None:
            return
        self._maybe_render(force=True)
        self.stream.write("\n")
        self.stream.flush()


def progress_stream():
    """The stream ``--progress`` renders to (stderr, patchable)."""
    return sys.stderr
