"""Live progress from per-net heartbeats.

Workers (and the serial path) emit one :class:`Heartbeat` per completed
net — name, wall seconds, peak RSS, originating pid.  The parent feeds
them to a :class:`ProgressTracker`, which maintains done/total, the
run's throughput and ETA, the per-net duration distribution, and a
straggler flag: a net whose wall time exceeds
``STRAGGLER_FACTOR × p95`` of the nets before it (once enough samples
exist for a p95 to mean anything).

``repro screen --progress`` renders the tracker as a single
carriage-return progress line on stderr::

    [ 37/100]  2.81 nets/s  eta 22s  p95 512 ms  stragglers: net12

Tiered screening runs add a live per-tier tally (``t0/t1/t2 141/5/54``)
right after the throughput; pruned nets tick ``done`` but stay out of
the duration distribution (see :meth:`ProgressTracker.record`).

The final tracker state lands in the run manifest, so the ledger
records the same distribution the operator watched.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

__all__ = ["AdaptiveDeadline", "Heartbeat", "ProgressTracker",
           "STRAGGLER_FACTOR", "MIN_STRAGGLER_SAMPLES",
           "WATCHDOG_FACTOR", "WATCHDOG_FLOOR_S", "WATCHDOG_CEILING_S"]

#: A net is flagged as a straggler when its duration exceeds this many
#: multiples of the p95 of the nets completed before it.
STRAGGLER_FACTOR = 3.0
#: Completed-net samples required before stragglers are judged (a p95
#: over fewer is noise).
MIN_STRAGGLER_SAMPLES = 5

#: Default hang deadline as a multiple of the rolling p95 — looser than
#: the straggler flag (3x) because a watchdog expiry *kills* the worker
#: rather than annotating the net.
WATCHDOG_FACTOR = 4.0
#: Clamp bounds for the adaptive deadline: the floor keeps a population
#: of sub-millisecond nets from turning scheduler jitter into kills,
#: the ceiling keeps one pathological early net from disabling hang
#: detection for the rest of the run.
WATCHDOG_FLOOR_S = 1.0
WATCHDOG_CEILING_S = 600.0


@dataclass(frozen=True)
class Heartbeat:
    """One completed net's vitals, shipped from the analyzing process."""

    net: str           #: net name
    seconds: float     #: wall-clock analysis time
    rss_bytes: int     #: the analyzing process's peak RSS at completion
    pid: int = 0       #: originating process
    failed: bool = False
    #: Screening tier that settled the net: 0/1 mean it was pruned
    #: without analysis; 2 (the default) means the full tier-2 flow
    #: ran.  Non-screening runs leave this at 2 everywhere.
    tier: int = 2

    def to_dict(self) -> dict:
        return {"net": self.net, "seconds": self.seconds,
                "rss_bytes": self.rss_bytes, "pid": self.pid,
                "failed": self.failed, "tier": self.tier}


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


class ProgressTracker:
    """Accumulates heartbeats; optionally renders a live progress line.

    ``stream=None`` keeps the tracker silent (pure accounting for the
    manifest); the CLI passes ``sys.stderr`` under ``--progress``.
    Rendering is throttled to ``min_interval`` seconds, with a forced
    final render (plus newline) from :meth:`finish`.
    """

    def __init__(self, total: int, *, stream=None,
                 min_interval: float = 0.1):
        self.total = total
        self.stream = stream
        self.min_interval = min_interval
        self.done = 0
        self.failed = 0
        self.durations: list[float] = []
        self.stragglers: list[str] = []
        #: Completed nets per screening tier (0/1 pruned, 2 analyzed).
        self.by_tier: dict[int, int] = {}
        self._t_start = time.monotonic()
        self._last_render = 0.0

    # -- accounting ----------------------------------------------------
    def record(self, heartbeat: Heartbeat) -> None:
        """Fold one completed net in (the pool's ``on_heartbeat``).

        Pruned nets (``tier < 2``) count toward ``done`` and the
        per-tier tally but are excluded from the duration distribution:
        a tier-0 bound takes microseconds, and folding thousands of
        those samples in would collapse the p50/p95 — and with them the
        straggler flag and the adaptive hang deadline — to zero.
        """
        self.by_tier[heartbeat.tier] = \
            self.by_tier.get(heartbeat.tier, 0) + 1
        if heartbeat.tier >= 2:
            if (len(self.durations) >= MIN_STRAGGLER_SAMPLES
                    and heartbeat.seconds
                    > STRAGGLER_FACTOR * self.p95()):
                self.stragglers.append(heartbeat.net)
            self.durations.append(heartbeat.seconds)
        self.done += 1
        if heartbeat.failed:
            self.failed += 1
        self._maybe_render()

    def p95(self) -> float:
        return _percentile(sorted(self.durations), 0.95)

    def p50(self) -> float:
        return _percentile(sorted(self.durations), 0.50)

    def nets_per_second(self) -> float:
        elapsed = time.monotonic() - self._t_start
        return self.done / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self) -> float:
        rate = self.nets_per_second()
        if rate <= 0.0:
            return float("inf")
        return max(self.total - self.done, 0) / rate

    def snapshot(self) -> dict:
        """Final state for the run manifest."""
        snap = {
            "nets": self.done,
            "total": self.total,
            "failed": self.failed,
            "nets_per_second": self.nets_per_second(),
            "p50_s": self.p50(),
            "p95_s": self.p95(),
            "stragglers": list(self.stragglers),
        }
        if set(self.by_tier) - {2}:
            snap["by_tier"] = {str(t): n for t, n
                               in sorted(self.by_tier.items())}
        return snap

    # -- rendering -----------------------------------------------------
    def render_line(self) -> str:
        width = len(str(self.total))
        parts = [f"[{self.done:>{width}d}/{self.total}]",
                 f"{self.nets_per_second():.2f} nets/s"]
        if set(self.by_tier) - {2}:
            parts.append("t0/t1/t2 "
                         + "/".join(str(self.by_tier.get(t, 0))
                                    for t in (0, 1, 2)))
        eta = self.eta_seconds()
        if self.done < self.total and eta != float("inf"):
            parts.append(f"eta {eta:.0f}s")
        if self.durations:
            parts.append(f"p95 {self.p95() * 1e3:.0f} ms")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.stragglers:
            parts.append("stragglers: " + ",".join(self.stragglers[-3:]))
        return "  ".join(parts)

    def _maybe_render(self, force: bool = False) -> None:
        if self.stream is None:
            return
        now = time.monotonic()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self.stream.write("\r\x1b[2K" + self.render_line())
        self.stream.flush()

    def finish(self) -> None:
        """Force a final render and terminate the progress line."""
        if self.stream is None:
            return
        self._maybe_render(force=True)
        self.stream.write("\n")
        self.stream.flush()


class AdaptiveDeadline:
    """Per-net hang deadline derived from the completed-net p95.

    The pool's watchdog asks :meth:`seconds` for "how long may the net
    currently in flight run before it counts as hung?".  The answer is
    ``factor x p95`` of the completed nets, clamped to
    ``[floor, ceiling]`` — but only once at least
    ``MIN_STRAGGLER_SAMPLES`` durations exist.  Before that the rolling
    p95 is statistical noise (and for the *first* net of a run it is
    exactly 0.0, which a naive ``factor x p95`` would turn into an
    instant kill), so the deadline falls back to the static timeout; if
    none was configured, hang detection stays off (``None``) until the
    sample floor is met.
    """

    def __init__(self, tracker: ProgressTracker, *,
                 static_timeout: float | None = None,
                 factor: float = WATCHDOG_FACTOR,
                 floor: float = WATCHDOG_FLOOR_S,
                 ceiling: float = WATCHDOG_CEILING_S):
        if factor <= 0.0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.tracker = tracker
        self.static_timeout = static_timeout
        self.factor = factor
        self.floor = floor
        self.ceiling = ceiling

    def seconds(self) -> float | None:
        """Current deadline in seconds, or None (no hang detection)."""
        if len(self.tracker.durations) < MIN_STRAGGLER_SAMPLES:
            return self.static_timeout
        adaptive = min(max(self.factor * self.tracker.p95(), self.floor),
                       self.ceiling)
        if self.static_timeout is not None:
            # The static timeout is an operator-set upper bound; the
            # adaptive deadline may tighten it but never loosen it.
            return min(adaptive, self.static_timeout)
        return adaptive


def progress_stream():
    """The stream ``--progress`` renders to (stderr, patchable)."""
    return sys.stderr
