"""Atomic file writes for telemetry, manifests and databases.

Every artifact the ledger layer produces (trace files, metrics dumps,
run manifests, characterization databases) is written through the same
discipline: serialize to a temp file in the target directory, then
``os.replace`` it over the destination.  A run killed mid-write leaves
any previous file intact instead of a truncated one — the property the
checkpoint machinery already guarantees for resume files.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["atomic_write_text", "atomic_write_json"]


def atomic_write_text(path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp + ``os.replace``)."""
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_json(path, payload, *, indent: int | None = 2) -> None:
    """Serialize ``payload`` as JSON and write it atomically."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
