"""Process-global metrics: counters, timers and fixed-bucket histograms.

The registry answers the questions the tracer is too heavyweight for —
"how many Newton iterations does a solve take", "what is the cache hit
ratio", "how often does the alignment probe beat the table" — with
instruments cheap enough to live on the hot path unconditionally:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Timer` — count / total / min / max of observed durations;
* :class:`Histogram` — fixed upper-bound buckets (values above the last
  bound land in an overflow bucket), plus count and sum;
* :class:`Gauge` — a sampled level (e.g. resident-set size) whose
  cross-process merge keeps the *peak*, so a parent folding worker
  snapshots ends up with the worst value seen anywhere in the run.

Instruments are created on first use and *identity-stable*: module-level
code may cache ``metrics.histogram("newton.iterations")`` once —
:meth:`MetricsRegistry.reset` zeroes values in place rather than
replacing objects, so cached handles never go stale.

Worker processes serialize their registry with :meth:`snapshot` and the
parent folds the payloads back with :meth:`merge_snapshot`, so a
``jobs=N`` run accumulates the same totals in the parent registry as
the equivalent serial run.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["Counter", "Timer", "Histogram", "Gauge", "MetricsRegistry",
           "registry", "DEFAULT_ITERATION_BUCKETS"]

#: Default bucket upper bounds for iteration-count histograms.
DEFAULT_ITERATION_BUCKETS = (1, 2, 3, 5, 8, 13, 21, 34, 55, 100)


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> int:
        return self.value

    def merge(self, payload: int) -> None:
        self.value += int(payload)

    def reset(self) -> None:
        self.value = 0


class Timer:
    """Duration accumulator: count, total and min/max seconds."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.reset()

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {"count": self.count, "total": self.total,
                "min": self.min if self.count else 0.0,
                "max": self.max}

    def merge(self, payload: dict) -> None:
        if not payload.get("count"):
            return
        self.count += payload["count"]
        self.total += payload["total"]
        self.min = min(self.min, payload["min"])
        self.max = max(self.max, payload["max"])

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``bounds`` are inclusive upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or in the overflow bucket
    (``counts[-1]``) past the last bound.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds=DEFAULT_ITERATION_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted, non-empty")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` (batch kernels
        record one per converged candidate in a single call)."""
        self.counts[bisect_left(self.bounds, value)] += count
        self.count += count
        self.total += value * count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the q-th bucket.

        Overflow observations report the last finite bound (there is no
        upper edge to return); an empty histogram reports 0.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    def to_dict(self) -> dict:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "total": self.total}

    def merge(self, payload: dict) -> None:
        if tuple(payload["bounds"]) != self.bounds:
            raise ValueError(
                f"cannot merge histogram with bounds {payload['bounds']} "
                f"into bounds {list(self.bounds)}")
        self.counts = [a + b for a, b in zip(self.counts,
                                             payload["counts"])]
        self.count += payload["count"]
        self.total += payload["total"]

    def reset(self) -> None:
        self.counts = [0] * len(self.counts)
        self.count = 0
        self.total = 0.0


class Gauge:
    """A sampled level: last value set plus the peak ever seen.

    Unlike a counter, a gauge can move both ways (RSS grows and
    shrinks); the merge keeps the **maximum** of both peaks, which is
    the semantics resource accounting needs — the manifest's "peak
    worker RSS" is the max over every process that folded in.
    """

    __slots__ = ("value", "max")

    def __init__(self):
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value

    def to_dict(self) -> dict:
        return {"value": self.value, "max": self.max}

    def merge(self, payload: dict) -> None:
        self.value = max(self.value, payload["value"])
        self.max = max(self.max, payload["max"])

    def reset(self) -> None:
        self.value = 0.0
        self.max = 0.0


_KINDS = {"counters": Counter, "timers": Timer, "histograms": Histogram,
          "gauges": Gauge}


class MetricsRegistry:
    """Named instruments, serializable to (and mergeable from) a dict."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, dict] = {
            kind: {} for kind in _KINDS}

    def _get(self, kind: str, name: str, factory):
        table = self._instruments[kind]
        instrument = table.get(name)
        if instrument is None:
            with self._lock:
                instrument = table.setdefault(name, factory())
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get("counters", name, Counter)

    def timer(self, name: str) -> Timer:
        return self._get("timers", name, Timer)

    def histogram(self, name: str,
                  bounds=DEFAULT_ITERATION_BUCKETS) -> Histogram:
        return self._get("histograms", name, lambda: Histogram(bounds))

    def gauge(self, name: str) -> Gauge:
        return self._get("gauges", name, Gauge)

    def snapshot(self) -> dict:
        """Serialize every instrument to a plain (picklable) dict."""
        return {
            kind: {name: inst.to_dict() for name, inst in table.items()}
            for kind, table in self._instruments.items()
        }

    to_dict = snapshot

    def merge_snapshot(self, payload: dict) -> None:
        """Fold a :meth:`snapshot` payload into this registry.

        Histograms are recreated with the payload's bounds when absent
        locally, so a parent can merge metrics it never recorded itself.
        """
        for name, value in payload.get("counters", {}).items():
            self.counter(name).merge(value)
        for name, value in payload.get("timers", {}).items():
            self.timer(name).merge(value)
        for name, value in payload.get("histograms", {}).items():
            self.histogram(name, value["bounds"]).merge(value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).merge(value)

    def reset(self) -> None:
        """Zero every instrument in place (cached handles stay valid)."""
        with self._lock:
            for table in self._instruments.values():
                for instrument in table.values():
                    instrument.reset()

    def drain(self) -> dict:
        """Snapshot then reset — the per-net worker reporting step."""
        payload = self.snapshot()
        self.reset()
        return payload


#: The process-global registry. Instrumented modules may cache handles
#: (``_HIST = registry().histogram(...)``) because reset() preserves
#: instrument identity.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY
