"""Offline trace analysis — ``repro trace summarize``.

Answers "where did the 40 s go" from a JSONL trace file without a
profiler: spans are grouped by name into stages, and each stage
reports call count, **total** time (sum of span durations) and
**self** time (total minus the time spent in direct child spans),
plus p50/p95 per-span durations.

Self time is the column to read first: a stage with large total but
small self is just a container for its children; a stage with large
self time is where the work actually happens.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StageSummary", "summarize_records", "format_summary",
           "trace_total_time"]


@dataclass
class StageSummary:
    """Aggregate timing of all spans sharing one name."""

    name: str
    count: int
    total: float  #: sum of span durations [s]
    self_time: float  #: total minus direct-children time [s]
    p50: float  #: median span duration [s]
    p95: float  #: 95th-percentile span duration [s]


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def summarize_records(records: list[dict]) -> list[StageSummary]:
    """Per-stage breakdown of a span-record list, largest self first."""
    children_time: dict[int, float] = {}
    for rec in records:
        parent = rec.get("parent")
        if parent is not None:
            children_time[parent] = children_time.get(parent, 0.0) \
                + rec["dur"]

    durations: dict[str, list[float]] = {}
    self_times: dict[str, float] = {}
    for rec in records:
        name = rec["name"]
        durations.setdefault(name, []).append(rec["dur"])
        self_times[name] = self_times.get(name, 0.0) \
            + rec["dur"] - children_time.get(rec["id"], 0.0)

    summaries = []
    for name, durs in durations.items():
        durs.sort()
        summaries.append(StageSummary(
            name=name,
            count=len(durs),
            total=sum(durs),
            self_time=self_times[name],
            p50=_percentile(durs, 0.50),
            p95=_percentile(durs, 0.95),
        ))
    summaries.sort(key=lambda s: s.self_time, reverse=True)
    return summaries


def trace_total_time(records: list[dict]) -> float:
    """Wall time covered by the trace: the sum of root-span durations."""
    return sum(rec["dur"] for rec in records
               if rec.get("parent") is None)


def format_summary(records: list[dict]) -> str:
    """Render the per-stage breakdown as a plain-text table."""
    summaries = summarize_records(records)
    header = (f"{'stage':<28} {'count':>6} {'total s':>9} "
              f"{'self s':>9} {'p50 ms':>9} {'p95 ms':>9}")
    lines = [header, "-" * len(header)]
    for s in summaries:
        lines.append(
            f"{s.name:<28} {s.count:>6d} {s.total:>9.3f} "
            f"{s.self_time:>9.3f} {s.p50 * 1e3:>9.2f} "
            f"{s.p95 * 1e3:>9.2f}")
    lines.append(f"# {len(records)} spans, "
                 f"{trace_total_time(records):.3f} s total traced time")
    return "\n".join(lines)
