"""Offline trace analysis — ``repro trace summarize`` / ``export``.

Answers "where did the 40 s go" from a JSONL trace file without a
profiler: spans are grouped by name into stages, and each stage
reports call count, **total** time (sum of span durations) and
**self** time (total minus the time spent in direct child spans),
plus p50/p95 per-span durations.

Self time is the column to read first: a stage with large total but
small self is just a container for its children; a stage with large
self time is where the work actually happens.

:func:`to_chrome_trace` converts the same records into Chrome
trace-event JSON (complete ``"X"`` events, microsecond ``ts``/``dur``)
so a merged ``jobs=N`` trace opens in ``ui.perfetto.dev`` or
``chrome://tracing`` as a flame chart — ``repro trace export --chrome``
on the CLI.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

__all__ = ["StageSummary", "summarize_records", "format_summary",
           "trace_total_time", "to_chrome_trace", "write_chrome_trace"]


@dataclass
class StageSummary:
    """Aggregate timing of all spans sharing one name."""

    name: str
    count: int
    total: float  #: sum of span durations [s]
    self_time: float  #: total minus direct-children time [s]
    p50: float  #: median span duration [s]
    p95: float  #: 95th-percentile span duration [s]


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def summarize_records(records: list[dict]) -> list[StageSummary]:
    """Per-stage breakdown of a span-record list, largest self first."""
    children_time: dict[int, float] = {}
    for rec in records:
        parent = rec.get("parent")
        if parent is not None:
            children_time[parent] = children_time.get(parent, 0.0) \
                + rec["dur"]

    durations: dict[str, list[float]] = {}
    self_times: dict[str, float] = {}
    for rec in records:
        name = rec["name"]
        durations.setdefault(name, []).append(rec["dur"])
        self_times[name] = self_times.get(name, 0.0) \
            + rec["dur"] - children_time.get(rec["id"], 0.0)

    summaries = []
    for name, durs in durations.items():
        durs.sort()
        summaries.append(StageSummary(
            name=name,
            count=len(durs),
            total=sum(durs),
            self_time=self_times[name],
            p50=_percentile(durs, 0.50),
            p95=_percentile(durs, 0.95),
        ))
    summaries.sort(key=lambda s: s.self_time, reverse=True)
    return summaries


def trace_total_time(records: list[dict]) -> float:
    """Wall time covered by the trace: the sum of root-span durations."""
    return sum(rec["dur"] for rec in records
               if rec.get("parent") is None)


# ----------------------------------------------------------------------
# Chrome / Perfetto trace-event export
# ----------------------------------------------------------------------
#: pid stamped on every exported event (one logical "repro" process —
#: worker spans are already merged into the parent's topology).
CHROME_PID = 1


def to_chrome_trace(records: list[dict]) -> dict:
    """Convert span records to Chrome trace-event JSON (a dict).

    Each span becomes a complete event (``ph: "X"``) with ``ts``/``dur``
    in microseconds, rebased so the earliest span starts at 0.  Track
    (``tid``) assignment preserves nesting: a child stays on its
    parent's track when its interval fits behind the previous sibling
    there; otherwise it opens a new track.  Concurrent subtrees of a
    ``jobs=N`` run (overlapping worker spans absorbed under one parent)
    therefore land on separate tracks — exactly the lanes a flame chart
    needs — while serial traces collapse onto one track.  Child
    intervals are clamped into their parent's so cross-process clock
    skew can never break the nesting invariant.
    """
    by_id = {rec["id"]: rec for rec in records}
    children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    for rec in records:
        parent = rec.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(rec)
        else:
            roots.append(rec)
    for siblings in children.values():
        siblings.sort(key=lambda rec: rec["start"])
    roots.sort(key=lambda rec: rec["start"])
    t0 = min((rec["start"] for rec in records), default=0.0)

    events: list[dict] = []
    tids = itertools.count(1)
    used_tids: list[int] = []

    def emit(rec: dict, tid: int, lo: float, hi: float) -> float:
        start = min(max(rec["start"], lo), hi)
        end = min(max(rec["start"] + rec["dur"], start), hi)
        events.append({
            "ph": "X",
            "name": rec["name"],
            "cat": "repro",
            "pid": CHROME_PID,
            "tid": tid,
            "ts": (start - t0) * 1e6,
            "dur": (end - start) * 1e6,
            "args": rec.get("attrs", {}),
        })
        # Lane allocation among this span's children: lane 0 is the
        # span's own track (cursor at its start); an overlapping
        # sibling opens (or reuses) a further lane = a fresh track.
        lanes: list[list] = [[tid, start]]
        for child in children.get(rec["id"], []):
            lane = next((l for l in lanes if child["start"] >= l[1]),
                        None)
            if lane is None:
                new_tid = next(tids)
                used_tids.append(new_tid)
                lane = [new_tid, start]
                lanes.append(lane)
            lane[1] = emit(child, lane[0], max(lane[1], start), end)
        return end

    root_lanes: list[list] = []
    for root in roots:
        lane = next((l for l in root_lanes if root["start"] >= l[1]),
                    None)
        if lane is None:
            new_tid = next(tids)
            used_tids.append(new_tid)
            lane = [new_tid, float("-inf")]
            root_lanes.append(lane)
        lane[1] = emit(root, lane[0], float("-inf"), float("inf"))

    meta = [{"ph": "M", "pid": CHROME_PID, "tid": 0,
             "name": "process_name", "args": {"name": "repro"}}]
    for tid in used_tids:
        meta.append({"ph": "M", "pid": CHROME_PID, "tid": tid,
                     "name": "thread_name",
                     "args": {"name": f"track {tid}"}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, records: list[dict]) -> int:
    """Export records as a Chrome trace file; returns the event count."""
    from repro.obs.ioutil import atomic_write_json

    payload = to_chrome_trace(records)
    atomic_write_json(path, payload, indent=None)
    return sum(1 for event in payload["traceEvents"]
               if event["ph"] == "X")


def format_summary(records: list[dict]) -> str:
    """Render the per-stage breakdown as a plain-text table."""
    summaries = summarize_records(records)
    header = (f"{'stage':<28} {'count':>6} {'total s':>9} "
              f"{'self s':>9} {'p50 ms':>9} {'p95 ms':>9}")
    lines = [header, "-" * len(header)]
    for s in summaries:
        lines.append(
            f"{s.name:<28} {s.count:>6d} {s.total:>9.3f} "
            f"{s.self_time:>9.3f} {s.p50 * 1e3:>9.2f} "
            f"{s.p95 * 1e3:>9.2f}")
    lines.append(f"# {len(records)} spans, "
                 f"{trace_total_time(records):.3f} s total traced time")
    return "\n".join(lines)
