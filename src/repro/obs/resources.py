"""Per-process resource accounting sampled at net boundaries.

The pool (``repro.exec.pool``) calls :func:`sample_resources` once
before a run and once after every net, in the serial parent and in
every worker process.  Each sample is a handful of instrument updates
on the process-global metrics registry, so the accounting rides the
existing snapshot-merge path for free: workers drain their registry per
net, the parent folds the payloads, and a ``jobs=N`` manifest ends up
with the peak RSS and CPU split over *all* processes.

Instruments written per sample:

* ``resource.peak_rss_bytes`` (gauge) — ``ru_maxrss`` normalized to
  bytes; the gauge's peak-merge makes the parent's value the max over
  every process that folded in.
* ``resource.cpu.user`` / ``resource.cpu.system`` (timers) — CPU-time
  *deltas* since the previous sample, one observation per net, so the
  timers' totals are the run's CPU split and their counts the sample
  count.
* ``obs.overhead`` (timer) — the cost of the sampling itself, so the
  manifest can report the telemetry overhead it imposed (<1% is the
  budget; measured well below).
"""

from __future__ import annotations

import resource
import sys
import time

from repro.obs.metrics import registry

__all__ = ["ResourceSampler", "sample_resources", "peak_rss_bytes",
           "resource_summary"]

#: ``ru_maxrss`` is bytes on macOS, kilobytes everywhere else.
_RSS_UNIT = 1 if sys.platform == "darwin" else 1024


def peak_rss_bytes() -> int:
    """This process's peak resident-set size, in bytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RSS_UNIT


class ResourceSampler:
    """Accumulates ``getrusage`` deltas into the metrics registry.

    The first :meth:`sample` primes the CPU baseline (no delta is
    observed); every later call observes the user/system CPU consumed
    since the previous one and refreshes the peak-RSS gauge.  One
    instance per process: the pool keeps a module-global via
    :func:`sample_resources`.
    """

    __slots__ = ("_last",)

    def __init__(self):
        self._last: tuple[float, float] | None = None

    def sample(self) -> None:
        t0 = time.perf_counter()
        usage = resource.getrusage(resource.RUSAGE_SELF)
        reg = registry()
        reg.gauge("resource.peak_rss_bytes").set(
            usage.ru_maxrss * _RSS_UNIT)
        if self._last is not None:
            user0, system0 = self._last
            reg.timer("resource.cpu.user").observe(
                max(usage.ru_utime - user0, 0.0))
            reg.timer("resource.cpu.system").observe(
                max(usage.ru_stime - system0, 0.0))
        self._last = (usage.ru_utime, usage.ru_stime)
        reg.timer("obs.overhead").observe(time.perf_counter() - t0)


_SAMPLER = ResourceSampler()


def sample_resources() -> None:
    """Sample this process's resource usage (see module docstring).

    Worker processes inherit a forked copy of the module-global sampler
    whose baseline belongs to the parent; ``_worker_init`` re-primes it
    so the first worker net's CPU delta is the worker's own.
    """
    _SAMPLER.sample()


def reset_sampler() -> None:
    """Drop the CPU baseline (worker init / test isolation)."""
    _SAMPLER._last = None


def resource_summary(snapshot: dict) -> dict:
    """Fold a metrics snapshot's resource instruments into a flat dict.

    The manifest embeds this next to the full snapshot so operators
    read "peak RSS, CPU split, sample count" without chasing metric
    names.  Missing instruments (telemetry off, old snapshot) come back
    as zeros.
    """
    gauges = snapshot.get("gauges", {})
    timers = snapshot.get("timers", {})
    rss = gauges.get("resource.peak_rss_bytes", {})
    user = timers.get("resource.cpu.user", {})
    system = timers.get("resource.cpu.system", {})
    overhead = timers.get("obs.overhead", {})
    return {
        "peak_rss_bytes": int(rss.get("max", 0)),
        "cpu_user_s": user.get("total", 0.0),
        "cpu_system_s": system.get("total", 0.0),
        "samples": int(overhead.get("count", 0)),
        "sampling_overhead_s": overhead.get("total", 0.0),
    }
