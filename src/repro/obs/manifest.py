"""Schema-versioned run manifests — the audit record of one invocation.

A :class:`RunManifest` makes a ``screen``/``bench`` run auditable after
the process exits: what command ran, on which config, at which git
revision, on what host/toolchain, how long each stage took, what the
solvers did (the full metrics snapshot), what failed or degraded, and
what the telemetry itself cost.  The CLI writes it atomically as JSON
(``--manifest run.json``); ``repro report run.json`` renders it back.

Lifecycle::

    manifest = RunManifest("screen", config={"seed": 3, "count": 100})
    with manifest.stage("analysis"):
        ...                         # or manifest.add_stage(name, secs)
    payload = manifest.write("run.json",
                             failures=...,  degraded=...,
                             progress=tracker.snapshot())

The payload's resource block folds out of the metrics snapshot via
:func:`repro.obs.resources.resource_summary`, so a ``jobs=N`` manifest
reports the peak RSS and CPU split across every worker that merged in.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time

from repro.obs.ioutil import atomic_write_json
from repro.obs.log import get_logger
from repro.obs.metrics import registry as _metrics
from repro.obs.resources import resource_summary, sample_resources

__all__ = ["MANIFEST_SCHEMA", "RunManifest", "git_revision",
           "host_info", "load_manifest", "format_manifest"]

#: Schema identifier stamped into every manifest.
MANIFEST_SCHEMA = "repro.obs.manifest/v1"

log = get_logger("obs.manifest")


def git_revision(cwd=None) -> dict:
    """The working tree's git state: ``{"revision", "dirty"}``.

    Degrades to ``{"revision": None, "dirty": None}`` outside a git
    checkout (or without a ``git`` binary) — a manifest must never make
    a run fail.
    """
    try:
        revision = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5.0, check=True).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd,
            capture_output=True, text=True, timeout=5.0, check=True)
        return {"revision": revision, "dirty": bool(status.stdout.strip())}
    except Exception as exc:
        log.debug("git revision unavailable: %s", exc)
        return {"revision": None, "dirty": None}


def host_info() -> dict:
    """Host and toolchain identity for reproducing a run's environment."""
    versions = {"python": platform.python_version()}
    for module_name in ("numpy", "scipy"):
        module = sys.modules.get(module_name)
        if module is None:
            try:
                module = __import__(module_name)
            except ImportError:
                continue
        versions[module_name] = getattr(module, "__version__", "unknown")
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
        "versions": versions,
    }


class _StageTimer:
    def __init__(self, manifest: "RunManifest", name: str):
        self._manifest = manifest
        self._name = name
        self._t0 = 0.0

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._manifest.add_stage(
            self._name, time.perf_counter() - self._t0)
        return False


class RunManifest:
    """Collects one run's audit record; see the module docstring."""

    def __init__(self, command: str, config: dict | None = None):
        self.command = command
        self.config = dict(config or {})
        self.created_at = time.time()
        self._t0 = time.perf_counter()
        self.git = git_revision()
        self.host = host_info()
        self.stages: dict[str, float] = {}
        # Prime the CPU baseline so finalize's closing sample yields
        # this process's split even if the pool never sampled.
        sample_resources()

    def stage(self, name: str) -> _StageTimer:
        """Context manager timing one named stage."""
        return _StageTimer(self, name)

    def add_stage(self, name: str, seconds: float) -> None:
        """Record (or accumulate) one stage's wall time."""
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def finalize(self, *, metrics_snapshot: dict | None = None,
                 failures: list | None = None,
                 degraded: dict | None = None,
                 progress: dict | None = None,
                 extra: dict | None = None) -> dict:
        """Assemble the manifest payload.

        ``failures`` takes :class:`repro.exec.NetFailure`-like records
        (anything with ``net_name``/``error_type``); ``degraded`` a
        ``{"total": n, "stages": [...]}`` summary; ``progress`` a
        :meth:`ProgressTracker.snapshot`; ``extra`` is merged in
        verbatim for command-specific blocks (e.g. the bench speedups).
        """
        sample_resources()
        wall_time = time.perf_counter() - self._t0
        if metrics_snapshot is None:
            metrics_snapshot = _metrics().snapshot()
        resources = resource_summary(metrics_snapshot)
        overhead_s = resources["sampling_overhead_s"]
        failure_summary = {"total": 0, "by_type": {}, "nets": []}
        for failure in failures or []:
            failure_summary["total"] += 1
            kind = getattr(failure, "error_type", "") or "Error"
            failure_summary["by_type"][kind] = \
                failure_summary["by_type"].get(kind, 0) + 1
            failure_summary["nets"].append(
                getattr(failure, "net_name", str(failure)))
        payload = {
            "schema": MANIFEST_SCHEMA,
            "command": self.command,
            "config": self.config,
            "created_at": self.created_at,
            "wall_time_s": wall_time,
            "git": self.git,
            "host": self.host,
            "stages": dict(self.stages),
            "resources": resources,
            "telemetry_overhead": {
                "seconds": overhead_s,
                "fraction": overhead_s / wall_time if wall_time > 0
                else 0.0,
            },
            "failures": failure_summary,
            "degraded": degraded or {"total": 0, "stages": []},
            "progress": progress,
            "metrics": metrics_snapshot,
        }
        if extra:
            payload.update(extra)
        return payload

    def write(self, path, **finalize_kwargs) -> dict:
        """Finalize and write the manifest atomically; returns payload."""
        payload = self.finalize(**finalize_kwargs)
        atomic_write_json(path, payload)
        return payload


def load_manifest(path) -> dict:
    """Read a manifest back, verifying the schema stamp."""
    with open(path) as handle:
        payload = json.load(handle)
    schema = payload.get("schema", "")
    if not schema.startswith("repro.obs.manifest/"):
        raise ValueError(f"{path}: not a run manifest "
                         f"(schema {schema!r})")
    return payload


def _fmt_bytes(count: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(count) < 1024.0 or unit == "GiB":
            return f"{count:.1f} {unit}"
        count /= 1024.0
    return f"{count:.1f} GiB"


def format_manifest(payload: dict) -> str:
    """Human-readable rendering of a manifest (``repro report``)."""
    git = payload.get("git", {})
    host = payload.get("host", {})
    resources = payload.get("resources", {})
    overhead = payload.get("telemetry_overhead", {})
    revision = git.get("revision") or "unknown"
    dirty = " (dirty)" if git.get("dirty") else ""
    versions = host.get("versions", {})
    lines = [
        f"run: {payload.get('command')} @ "
        f"{time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(payload.get('created_at', 0)))}",
        f"git: {revision[:12]}{dirty}",
        f"host: {host.get('hostname')} ({host.get('platform')}, "
        f"{host.get('cpu_count')} cpus)",
        "versions: " + ", ".join(f"{k} {v}"
                                 for k, v in sorted(versions.items())),
        f"wall time: {payload.get('wall_time_s', 0.0):.2f} s",
    ]
    config = payload.get("config", {})
    if config:
        lines.append("config: " + ", ".join(
            f"{k}={v}" for k, v in sorted(config.items())))
    stages = payload.get("stages", {})
    if stages:
        lines.append("stages:")
        width = max(len(name) for name in stages)
        for name, seconds in sorted(stages.items(),
                                    key=lambda kv: -kv[1]):
            lines.append(f"  {name:<{width}}  {seconds:9.3f} s")
    if resources:
        lines.append(
            f"resources: peak RSS "
            f"{_fmt_bytes(resources.get('peak_rss_bytes', 0))}, cpu "
            f"{resources.get('cpu_user_s', 0.0):.2f} s user / "
            f"{resources.get('cpu_system_s', 0.0):.2f} s system "
            f"({resources.get('samples', 0)} samples)")
    if overhead:
        lines.append(
            f"telemetry overhead: {overhead.get('seconds', 0.0):.4f} s "
            f"({100.0 * overhead.get('fraction', 0.0):.3f}% of wall)")
    progress = payload.get("progress")
    if progress:
        line = (f"nets: {progress.get('nets')}/{progress.get('total')} "
                f"at {progress.get('nets_per_second', 0.0):.2f} nets/s, "
                f"p50 {progress.get('p50_s', 0.0) * 1e3:.0f} ms / "
                f"p95 {progress.get('p95_s', 0.0) * 1e3:.0f} ms")
        if progress.get("stragglers"):
            line += ", stragglers: " + ",".join(progress["stragglers"])
        lines.append(line)
    screening = payload.get("screening")
    if screening:
        by_tier = screening.get("by_tier", {})
        seconds = screening.get("seconds_by_tier", {})
        lines.append(
            f"screening: {screening.get('pruned', 0)} of "
            f"{screening.get('total', 0)} nets pruned "
            f"({100.0 * screening.get('pruned_fraction', 0.0):.1f}%), "
            f"{screening.get('escalated', 0)} escalated")
        for tier in ("0", "1", "2"):
            if by_tier.get(tier):
                lines.append(
                    f"  tier {tier}: {by_tier[tier]:>6d} nets  "
                    f"{seconds.get(tier, 0.0):9.3f} s")
        reasons = screening.get("reasons", {})
        if reasons:
            lines.append("  reasons: " + ", ".join(
                f"{name} x{count}"
                for name, count in sorted(reasons.items())))
        audit = screening.get("audit")
        if audit:
            verdict = "ok" if audit.get("ok") else "UNSOUND"
            lines.append(
                f"  prune audit: {audit.get('checked', 0)}/"
                f"{audit.get('eligible', 0)} re-checked, "
                f"{audit.get('unsound_prunes', 0)} unsound ({verdict})")
    failures = payload.get("failures", {})
    if failures.get("total"):
        by_type = ", ".join(f"{k} x{v}" for k, v
                            in sorted(failures["by_type"].items()))
        lines.append(f"failures: {failures['total']} ({by_type})")
    degraded = payload.get("degraded", {})
    if degraded.get("total"):
        lines.append(f"degraded: {degraded['total']} "
                     f"({','.join(degraded.get('stages', []))})")
    return "\n".join(lines)
