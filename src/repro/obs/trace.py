"""Nested-span tracing for the analysis pipeline.

A :class:`Tracer` records **spans** — named, attributed, timed regions
of execution that nest via a thread-local current-span stack.  Finished
spans become plain dict records (``id``, ``parent``, ``name``,
``attrs``, ``start``, ``dur``) suitable for JSONL export and offline
analysis (``repro trace summarize``).

Design constraints, in order:

1. **The hot path pays ~nothing when tracing is off.**  The process
   default is a disabled tracer whose :meth:`Tracer.span` returns a
   shared no-op context manager — one attribute check per call, no
   allocation, no clock read.
2. **Parallel traces merge into one file.**  Worker processes run their
   own tracer, :meth:`Tracer.drain` their buffers per net, and the
   parent :meth:`Tracer.absorb`\\ s them (re-identified, re-parented
   under the parent's active span) in input-net order — so a
   ``jobs=N`` run produces the same trace topology as a serial run.
3. **Cross-process timestamps stay comparable.**  ``start`` is
   wall-clock (``time.time``) while ``dur`` comes from the monotonic
   ``perf_counter``, so merged records line up on a shared axis without
   sharing a clock origin.
"""

from __future__ import annotations

import itertools
import json
import threading
import time

from repro.obs.ioutil import atomic_write_text
from repro.obs.log import get_logger
from repro.obs.metrics import registry as _metrics

__all__ = ["Span", "Tracer", "current_tracer", "set_tracer",
           "enable_tracing", "disable_tracing", "span",
           "read_trace", "write_trace"]

log = get_logger("obs.trace")


class _NullSpan:
    """Shared do-nothing context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One active (entered, not yet exited) traced region."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "_start", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self._start = 0.0
        self._t0 = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes mid-span (e.g. an iteration count)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer._next_id()
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:
            # A span exited out of LIFO order (generator interleaving,
            # a swallowed __enter__, ...).  Leaving ``self`` on the
            # stack would silently mis-parent every later span under
            # it; remove it wherever it sits and make the imbalance
            # observable instead.
            _metrics().counter("obs.span.imbalance").inc()
            log.debug("span stack imbalance: %r exited while %r was "
                      "innermost", self.name,
                      stack[-1].name if stack else None)
            try:
                stack.remove(self)
            except ValueError:
                pass
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._record({
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self._start,
            "dur": duration,
            "attrs": self.attrs,
        })
        return False


class Tracer:
    """Span recorder with a thread-local span stack and a dict buffer.

    ``enabled=False`` makes :meth:`span` return a shared no-op context
    manager; instrumented code never needs to check the flag itself.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._records: list[dict] = []
        self._ids = itertools.count(1)

    # -- internals used by Span ---------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        return next(self._ids)

    def _record(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    # -- public API ----------------------------------------------------
    def span(self, name: str, **attrs):
        """Context manager tracing one region (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def current_span(self) -> Span | None:
        """The innermost active span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def records(self) -> list[dict]:
        """Finished span records so far (children precede parents)."""
        with self._lock:
            return list(self._records)

    def drain(self) -> list[dict]:
        """Return and clear the finished-span buffer."""
        with self._lock:
            records, self._records = self._records, []
        return records

    def absorb(self, records: list[dict]) -> None:
        """Merge drained records from another tracer (e.g. a worker).

        Span ids are reallocated from this tracer's sequence and
        top-level records are re-parented under this thread's active
        span, so absorbed sub-traces nest exactly where the call sits.
        """
        if not records:
            return
        current = self.current_span()
        root_parent = current.span_id if current is not None else None
        remap = {rec["id"]: self._next_id() for rec in records}
        merged = []
        for rec in records:
            parent = rec.get("parent")
            merged.append({**rec,
                           "id": remap[rec["id"]],
                           "parent": remap.get(parent, root_parent)})
        with self._lock:
            self._records.extend(merged)

    def export_jsonl(self, path) -> int:
        """Write the finished spans as JSON Lines; returns the count."""
        records = self.records()
        write_trace(path, records)
        return len(records)


# ----------------------------------------------------------------------
# Process-global tracer
# ----------------------------------------------------------------------
_TRACER = Tracer(enabled=False)


def current_tracer() -> Tracer:
    """The process-global tracer (a disabled no-op by default)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global tracer."""
    global _TRACER
    _TRACER = tracer
    return tracer


def enable_tracing() -> Tracer:
    """Install and return a fresh enabled tracer."""
    return set_tracer(Tracer(enabled=True))


def disable_tracing() -> Tracer:
    """Restore the disabled no-op default."""
    return set_tracer(Tracer(enabled=False))


def span(name: str, **attrs):
    """Open a span on the process-global tracer (no-op when disabled)."""
    return _TRACER.span(name, **attrs)


# ----------------------------------------------------------------------
# Trace files
# ----------------------------------------------------------------------
def write_trace(path, records: list[dict]) -> None:
    """Write span records as JSON Lines (one span object per line).

    The write is atomic (temp file + ``os.replace``): a run killed
    mid-export never leaves a truncated trace behind.
    """
    atomic_write_text(
        path, "".join(json.dumps(record) + "\n" for record in records))


def read_trace(path) -> list[dict]:
    """Read a JSONL trace file back into span records."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
