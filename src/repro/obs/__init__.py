"""Observability: tracing, metrics and structured logging.

Three cooperating layers, all safe to leave in hot paths:

* :mod:`repro.obs.trace` — nested spans with a thread-local stack,
  a no-op disabled default, JSONL export and cross-process merging
  (workers drain span buffers, the parent absorbs them in input order).
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  timers and fixed-bucket histograms; snapshots serialize to plain
  dicts and merge across processes.
* :mod:`repro.obs.log` — the ``repro.*`` logger hierarchy and the CLI
  verbosity mapping (``-v``/``-q``).

Typical instrumented code::

    from repro.obs import get_logger, metrics, span

    log = get_logger("core.analysis")
    _SOLVES = metrics().counter("newton.solves")

    with span("net.analyze", net=net.name):
        _SOLVES.inc()
        log.debug("converged after %d iterations", n)

See ``docs/architecture.md`` ("Observability") for the span taxonomy,
metric names and trace file schema.
"""

from repro.obs.log import configure_cli_logging, get_logger, verbosity_level
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    registry as metrics,
)
from repro.obs.summary import (
    StageSummary,
    format_summary,
    summarize_records,
    trace_total_time,
)
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    read_trace,
    set_tracer,
    span,
    write_trace,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "StageSummary",
    "Timer",
    "Tracer",
    "configure_cli_logging",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "format_summary",
    "get_logger",
    "metrics",
    "read_trace",
    "set_tracer",
    "span",
    "summarize_records",
    "trace_total_time",
    "verbosity_level",
    "write_trace",
]
