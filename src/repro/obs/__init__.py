"""Observability: tracing, metrics and structured logging.

Three cooperating layers, all safe to leave in hot paths:

* :mod:`repro.obs.trace` — nested spans with a thread-local stack,
  a no-op disabled default, JSONL export and cross-process merging
  (workers drain span buffers, the parent absorbs them in input order).
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  timers and fixed-bucket histograms; snapshots serialize to plain
  dicts and merge across processes.
* :mod:`repro.obs.log` — the ``repro.*`` logger hierarchy and the CLI
  verbosity mapping (``-v``/``-q``).

Typical instrumented code::

    from repro.obs import get_logger, metrics, span

    log = get_logger("core.analysis")
    _SOLVES = metrics().counter("newton.solves")

    with span("net.analyze", net=net.name):
        _SOLVES.inc()
        log.debug("converged after %d iterations", n)

See ``docs/architecture.md`` ("Observability") for the span taxonomy,
metric names and trace file schema.
"""

from repro.obs.ioutil import atomic_write_json, atomic_write_text
from repro.obs.log import configure_cli_logging, get_logger, verbosity_level
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    format_manifest,
    git_revision,
    host_info,
    load_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    registry as metrics,
)
from repro.obs.progress import Heartbeat, ProgressTracker
from repro.obs.resources import (
    ResourceSampler,
    peak_rss_bytes,
    resource_summary,
    sample_resources,
)
from repro.obs.summary import (
    StageSummary,
    format_summary,
    summarize_records,
    to_chrome_trace,
    trace_total_time,
    write_chrome_trace,
)
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    read_trace,
    set_tracer,
    span,
    write_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "ProgressTracker",
    "ResourceSampler",
    "RunManifest",
    "Span",
    "StageSummary",
    "Timer",
    "Tracer",
    "atomic_write_json",
    "atomic_write_text",
    "configure_cli_logging",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "format_manifest",
    "format_summary",
    "get_logger",
    "git_revision",
    "host_info",
    "load_manifest",
    "metrics",
    "peak_rss_bytes",
    "read_trace",
    "resource_summary",
    "sample_resources",
    "set_tracer",
    "span",
    "summarize_records",
    "to_chrome_trace",
    "trace_total_time",
    "verbosity_level",
    "write_chrome_trace",
    "write_trace",
]
