"""Routed-wire geometry.

Wires run horizontally on numbered routing tracks with a fixed track
pitch; a wire is an interval ``[x_start, x_end]`` on its track.  Two
wires couple when they sit on *different* tracks and their x-intervals
overlap — the shared span is the parallel run length, and their lateral
spacing is the track distance times the pitch.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Wire", "parallel_overlap"]


@dataclass(frozen=True)
class Wire:
    """One routed wire segment.

    Attributes
    ----------
    net:
        Net name (several wires may share a net; ``"gnd"`` marks shield
        wires tied to the rail).
    track:
        Routing track index (lateral position = track x pitch).
    x_start, x_end:
        Span along the routing direction, in meters.
    """

    net: str
    track: int
    x_start: float
    x_end: float

    def __post_init__(self):
        if self.x_end <= self.x_start:
            raise ValueError(
                f"wire on net {self.net!r}: x_end must exceed x_start")

    @property
    def length(self) -> float:
        return self.x_end - self.x_start

    def overlap_with(self, other: "Wire") -> float:
        """Parallel run length shared with another wire."""
        return parallel_overlap(self, other)

    def spacing_to(self, other: "Wire", pitch: float) -> float:
        """Centerline distance to another wire's track."""
        return abs(self.track - other.track) * pitch


def parallel_overlap(a: Wire, b: Wire) -> float:
    """Shared x-span of two wires (0 when disjoint or same track)."""
    if a.track == b.track:
        return 0.0
    return max(0.0, min(a.x_end, b.x_end) - max(a.x_start, b.x_start))
