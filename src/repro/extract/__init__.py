"""Layout-level parasitic extraction (the flow's front end).

ClariNet consumed parasitics extracted from routed layout.  This package
provides the missing front end as a simplified Manhattan model: wires
run on parallel routing tracks, resistance and ground capacitance scale
with drawn length, and coupling capacitance accrues over the *parallel
run length* between laterally adjacent wires, falling off with spacing.

* :mod:`repro.extract.geometry` — wires, tracks and overlap arithmetic.
* :mod:`repro.extract.parasitics` — per-unit-length coefficients and the
  extractor producing a :class:`~repro.circuit.Circuit`, plus the
  builder that assembles a full :class:`~repro.core.net.CoupledNet`
  from a routed bus.
"""

from repro.extract.geometry import Wire, parallel_overlap
from repro.extract.parasitics import (
    ParasiticTech,
    extract_interconnect,
    coupled_net_from_layout,
)

__all__ = [
    "Wire",
    "parallel_overlap",
    "ParasiticTech",
    "extract_interconnect",
    "coupled_net_from_layout",
]
