"""Parasitic extraction from routed-wire geometry.

A :class:`ParasiticTech` holds per-unit-length coefficients calibrated to
the synthetic technology: series resistance, area (ground) capacitance,
and a lateral coupling capacitance that falls off inversely with spacing
and is cut off beyond a few tracks.  :func:`extract_interconnect` turns a
list of :class:`~repro.extract.geometry.Wire` objects into the
segmented RC(-coupling) :class:`~repro.circuit.Circuit` the analysis flow
consumes; :func:`coupled_net_from_layout` goes all the way to a
:class:`~repro.core.net.CoupledNet`.

Shield wires (net name ``"gnd"``) extract like signal wires but are tied
to the ground rail at both ends through a low-resistance connection —
inserting one between a victim and an aggressor is the classic layout
fix this model lets you quantify.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.topology import couple_nodes, rc_line
from repro.core.net import AggressorSpec, CoupledNet, DriverSpec, ReceiverSpec
from repro.extract.geometry import Wire, parallel_overlap
from repro.units import FF, OHM, UM

__all__ = ["ParasiticTech", "extract_interconnect",
           "coupled_net_from_layout"]

#: Net name marking grounded shield wires.
SHIELD_NET = "gnd"


@dataclass(frozen=True)
class ParasiticTech:
    """Per-unit-length parasitic coefficients of the routing layer."""

    #: Track pitch (lateral distance between adjacent tracks).
    pitch: float = 0.4 * UM
    #: Series resistance per length.
    r_per_length: float = 2.0 * OHM / UM
    #: Capacitance to ground per length.
    c_ground_per_length: float = 0.05 * FF / UM
    #: Lateral coupling per length at one-pitch spacing.
    c_coupling_at_pitch: float = 0.08 * FF / UM
    #: Coupling is ignored beyond this many tracks of separation.
    max_coupling_tracks: int = 2
    #: Resistance of the tie connecting a shield wire to the rail.
    shield_tie_resistance: float = 10.0 * OHM
    #: Discretization: segments per wire.
    segments: int = 8

    def coupling_per_length(self, spacing: float) -> float:
        """Lateral coupling per meter of parallel run at ``spacing``."""
        if spacing <= 0.0:
            raise ValueError("wires on the same track cannot couple")
        if spacing > self.max_coupling_tracks * self.pitch + 1e-12:
            return 0.0
        return self.c_coupling_at_pitch * self.pitch / spacing


def _wire_endpoints(index: int, wire: Wire,
                    n_segments: int) -> tuple[str, str]:
    base = f"w{index}_{wire.net}" if wire.net != SHIELD_NET \
        else f"w{index}_shield"
    return f"{base}_left", f"{base}_right"


def extract_interconnect(wires: list[Wire], tech: ParasiticTech, *,
                         name: str = "extracted"
                         ) -> tuple[Circuit, dict[int, list[str]]]:
    """Extract a segmented RC circuit from routed wires.

    Returns the circuit and a map from wire index to its ordered node
    list (left to right), which callers use to attach drivers and
    receivers.  Signal nets must appear on exactly one wire each; any
    number of ``"gnd"`` shield wires is allowed.
    """
    if not wires:
        raise ValueError("no wires to extract")
    signal_nets = [w.net for w in wires if w.net != SHIELD_NET]
    if len(set(signal_nets)) != len(signal_nets):
        raise ValueError("each signal net must be a single wire")

    circuit = Circuit(name)
    nodes: dict[int, list[str]] = {}
    for index, wire in enumerate(wires):
        left, right = _wire_endpoints(index, wire, tech.segments)
        names = rc_line(circuit, f"w{index}_", left, right,
                        tech.segments, tech.r_per_length * wire.length,
                        tech.c_ground_per_length * wire.length)
        nodes[index] = names
        if wire.net == SHIELD_NET:
            circuit.add_resistor(f"w{index}_tie0", names[0], GROUND,
                                 tech.shield_tie_resistance)
            circuit.add_resistor(f"w{index}_tie1", names[-1], GROUND,
                                 tech.shield_tie_resistance)

    # Lateral coupling over parallel run lengths.
    pair_id = 0
    for i, wire_a in enumerate(wires):
        for j in range(i + 1, len(wires)):
            wire_b = wires[j]
            overlap = parallel_overlap(wire_a, wire_b)
            if overlap <= 0.0:
                continue
            spacing = wire_a.spacing_to(wire_b, tech.pitch)
            c_total = tech.coupling_per_length(spacing) * overlap
            if c_total <= 0.0:
                continue
            lo = max(wire_a.x_start, wire_b.x_start)
            hi = min(wire_a.x_end, wire_b.x_end)

            def overlapped(wire: Wire, names: list[str]) -> list[str]:
                picked = []
                for k, node in enumerate(names):
                    x = wire.x_start + wire.length * k / tech.segments
                    if lo - 1e-12 <= x <= hi + 1e-12:
                        picked.append(node)
                return picked or [names[0]]

            couple_nodes(circuit, f"cc{pair_id}_",
                         overlapped(wire_a, nodes[i]),
                         overlapped(wire_b, nodes[j]), c_total)
            pair_id += 1
    return circuit, nodes


def coupled_net_from_layout(
    wires: list[Wire],
    tech: ParasiticTech,
    victim_net: str,
    victim_driver: DriverSpec,
    receiver: ReceiverSpec,
    aggressor_drivers: dict[str, DriverSpec],
    *,
    aggressor_far_load: float = 8.0 * FF,
    name: str | None = None,
) -> CoupledNet:
    """Assemble a :class:`CoupledNet` from a routed bus.

    Drivers attach at each wire's left end, the victim's receiver at its
    right end; aggressor far ends get a lumped load.  Nets routed in the
    layout but absent from ``aggressor_drivers`` (other than the victim
    and shields) are rejected — every signal wire needs a driver.
    """
    circuit, nodes = extract_interconnect(
        wires, tech, name=(name or victim_net) + "_wires")

    wire_of: dict[str, int] = {
        w.net: i for i, w in enumerate(wires) if w.net != SHIELD_NET
    }
    if victim_net not in wire_of:
        raise ValueError(f"victim net {victim_net!r} not in layout")
    missing = set(wire_of) - {victim_net} - set(aggressor_drivers)
    if missing:
        raise ValueError(
            f"signal nets without drivers: {sorted(missing)}")

    victim_nodes = nodes[wire_of[victim_net]]
    aggressors = []
    for net_name, driver in aggressor_drivers.items():
        if net_name not in wire_of:
            raise ValueError(f"aggressor net {net_name!r} not in layout")
        agg_nodes = nodes[wire_of[net_name]]
        circuit.add_capacitor(f"{net_name}_farload", agg_nodes[-1],
                              GROUND, aggressor_far_load)
        aggressors.append(AggressorSpec(
            name=net_name, driver=driver,
            root=agg_nodes[0], far_end=agg_nodes[-1]))

    return CoupledNet(
        name=name or f"{victim_net}_net",
        interconnect=circuit,
        victim_root=victim_nodes[0],
        victim_receiver_node=victim_nodes[-1],
        victim_driver=victim_driver,
        receiver=receiver,
        aggressors=aggressors,
    )
